"""The incremental maintenance engine of the degeneracy-bounded index.

The paper's maintenance section observes that after inserting or removing an
edge ``(u, v)`` only a bounded *candidate region* around the edge — the S⁺
(insertion) / S⁻ (removal) sets — can change its offsets at any level, and
only those vertices' index entries need recomputing.  This module implements
that outline as three cooperating pieces:

**Region planner** (:func:`plan_level_region`)
    Per level and index half, a slack-aware closure expands from the updated
    edge's endpoints through exactly the vertices whose offsets *could*
    change.  It leans on two structural facts of a single edge update: a
    non-endpoint offset moves by at most one, and every change chains back
    to the edge through changed vertices.  A vertex joins the S⁻ closure
    only when more of its supporters may stop covering its old offset than
    it has slack, and the S⁺ closure only when its optimistic support at
    ``old + 1`` reaches the peeling requirement — so the closure stays a
    small ball around the edge even on graphs with one giant component.

**Region peel** (:class:`_RegionPeel`)
    The candidate region is re-peeled with every edge leaving it frozen at
    the outside endpoint's old offset (an outside vertex belongs to the
    (τ,β)-core exactly when its old offset is ≥ β, so it supports its region
    neighbour for secondary targets up to that offset).  Because vertices
    outside the closure provably keep their offsets, the frozen peel is
    *exact* — no verification pass is needed.  It runs on the vectorised CSR
    kernels
    (:func:`~repro.decomposition.csr_kernels.csr_region_offsets_fixed_primary`)
    for CSR-backed indexes and larger regions, and on the pure-python twin
    (:func:`~repro.decomposition.offsets.region_offsets_fixed_primary`)
    otherwise.  A closure that outgrows the region budget sends just that
    level down the full re-peel fallback.

**Patch applier**
    Level results are applied change-driven: only vertices whose offsets
    moved, their neighbours (whose sorted entries embed those offsets) and
    the edge's endpoints get their adjacency lists rebuilt — in the dict
    stores *and*, via :func:`~repro.index.csr_build.patch_level_arrays`,
    in any materialised :class:`~repro.index.csr_build.LevelArrays` of the
    array query path, so a maintained index keeps answering batch queries on
    the fast array path instead of invalidating it on every update.  Every
    patch is also recorded in a :class:`MaintenanceJournal` so
    ``save_index(format="snapshot")`` can persist just the delta next to an
    existing base snapshot (:mod:`repro.serving.snapshot`).

Degeneracy is adjusted incrementally too: a single edge update moves δ by at
most one, growth is pre-screened by an O(1) endpoint check before the (rare)
candidate-core peel, and shrink is detected from patched per-level core sizes
without touching the rest of the graph.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:
    from repro.graph.csr import CSRBipartiteGraph
    from repro.index.csr_build import LevelArrays
    from repro.index.traversal import AdjacencyLists
    from repro.serving.snapshot import SnapshotIndex

from repro.decomposition.abcore import abcore_vertices
from repro.decomposition.offsets import region_offsets_fixed_primary
from repro.graph.bipartite import BipartiteGraph, Side, Vertex
from repro.graph.csr import HAS_NUMPY
from repro.graph.views import induced_subgraph
from repro.index.base import IndexStats
from repro.index.degeneracy_index import DegeneracyIndex
from repro.utils.timer import Timer

if HAS_NUMPY:  # pragma: no branch - trivial import guard
    import numpy as np

__all__ = [
    "DEFAULT_REGION_BUDGET",
    "plan_level_region",
    "MaintenanceJournal",
    "DynamicDegeneracyIndex",
]

#: Default cap on the number of vertices an S⁺/S⁻ candidate region may
#: contain before that level's maintenance falls back to a full re-peel.
DEFAULT_REGION_BUDGET = 4096

#: Candidate regions at least this large peel on the CSR kernels (when the
#: index backend is CSR); below it the python peel wins on constant factors.
_REGION_CSR_THRESHOLD = 32


# --------------------------------------------------------------------------- #
# region planning — the S⁺ / S⁻ candidate closure
# --------------------------------------------------------------------------- #
def plan_level_region(
    graph: BipartiteGraph,
    old_offsets: Dict[Vertex, int],
    primary_side: Side,
    threshold: int,
    seeds: Sequence[Vertex],
    removal: bool,
    budget: Optional[int] = None,
) -> Optional[List[Vertex]]:
    """The candidate set whose offsets can change at one level and half.

    The closure exploits two structural facts of a single edge update: a
    *non-endpoint* offset moves by at most one, and every changed vertex has
    a changed neighbour that caused it (the change chains back to the
    updated edge).  Expansion therefore needs two gates:

    * a **trigger** — a candidate neighbour whose potential move crosses the
      vertex's old offset: for a non-endpoint that means equal old offsets;
      an endpoint (which may move multiple steps) triggers every neighbour
      on the relevant side of its own offset;
    * a **feasibility test**:

      - **S⁻ (removal)** counts *pressure* dynamically: drops are forced one
        by one (each needs an earlier actual drop to cause it), so a vertex
        can drop only once more of its candidate supporters may cross its
        old offset than it has slack — support above the peeling
        requirement.  This keeps the closure to the genuinely threatened
        vertices even on large equal-offset plateaus.
      - **S⁺ (insertion)** must be optimistic, because rises can be mutual
        (a group may only be able to rise together): a vertex is a candidate
        as soon as every neighbour that *might* reach ``old + 1`` (those at
        or above its old offset, plus endpoints) covers the requirement at
        that target.  The region peel afterwards prunes the optimism.

    Vertices outside the returned set provably keep their offsets, so
    peeling the candidates with external support frozen at the old offsets
    is exact.  Returns ``None`` when the closure exceeds ``budget`` — the
    caller then re-peels the level in full.
    """
    endpoint_set = set(seeds)
    candidates: Set[Vertex] = set(endpoint_set)
    ordered: List[Vertex] = list(candidates)
    queue: deque[Vertex] = deque(ordered)
    rejected: Set[Vertex] = set()
    slack: Dict[Vertex, int] = {}
    pressure: Dict[Vertex, int] = {}
    while queue:
        candidate = queue.popleft()
        offset_c = old_offsets.get(candidate, 0)
        is_endpoint = candidate in endpoint_set
        other = candidate.side.other
        for nbr_label in graph.neighbors(candidate.side, candidate.label):
            vertex = Vertex(other, nbr_label)
            if vertex in candidates or vertex in rejected:
                continue
            offset_x = old_offsets.get(vertex, 0)
            if removal:
                if offset_x < 1:
                    continue  # already at the floor
                crossed = offset_c >= offset_x if is_endpoint else offset_c == offset_x
                if not crossed:
                    continue
                if vertex not in slack:
                    need = threshold if vertex.side is primary_side else offset_x
                    mirror = vertex.side.other
                    lookup = old_offsets.get
                    support = 0
                    for m_label in graph.neighbors(vertex.side, vertex.label):
                        if lookup(Vertex(mirror, m_label), 0) >= offset_x:
                            support += 1
                    slack[vertex] = support - need
                    pressure[vertex] = 0
                pressure[vertex] += 1
                if pressure[vertex] <= slack[vertex]:
                    continue
            else:
                helps = offset_c <= offset_x if is_endpoint else offset_c == offset_x
                if not helps:
                    continue
                need = threshold if vertex.side is primary_side else offset_x + 1
                mirror = vertex.side.other
                lookup = old_offsets.get
                support = 0
                for m_label in graph.neighbors(vertex.side, vertex.label):
                    m = Vertex(mirror, m_label)
                    if m in endpoint_set or lookup(m, 0) >= offset_x:
                        support += 1
                        if support >= need:
                            break
                if support < need:
                    rejected.add(vertex)
                    continue
            candidates.add(vertex)
            ordered.append(vertex)
            queue.append(vertex)
            if budget is not None and len(candidates) > budget:
                return None
    return ordered


class _RegionPeel:
    """One candidate region's peel context: adjacency split internal/external.

    The CSR variant freezes the region into a private sub-CSR (unweighted —
    the peel never looks at weights) and runs the vectorised region kernel;
    tiny regions stay on the python peel, whose constant factors win below
    :data:`_REGION_CSR_THRESHOLD` vertices.
    """

    def __init__(
        self, graph: BipartiteGraph, vertices: Sequence[Vertex], backend: str
    ) -> None:
        region = set(vertices)
        self._internal: Dict[Vertex, Tuple[Vertex, ...]] = {}
        self._external: Dict[Vertex, Tuple[Vertex, ...]] = {}
        for vertex in vertices:
            other = vertex.side.other
            internal: List[Vertex] = []
            external: List[Vertex] = []
            for nbr_label in graph.neighbors(vertex.side, vertex.label):
                nbr = Vertex(other, nbr_label)
                (internal if nbr in region else external).append(nbr)
            self._internal[vertex] = tuple(internal)
            if external:
                self._external[vertex] = tuple(external)
        self._csr = None
        self._ext_arrays = None
        if backend == "csr" and len(region) >= _REGION_CSR_THRESHOLD:
            self._freeze_region()

    def _freeze_region(self) -> None:
        from repro.graph.csr import CSRBipartiteGraph

        uppers = [v for v in self._internal if v.side is Side.UPPER]
        lowers = [v for v in self._internal if v.side is Side.LOWER]
        upper_ids = {v: i for i, v in enumerate(uppers)}
        lower_ids = {v: i for i, v in enumerate(lowers)}

        def layer(
            vertices: List[Vertex], other_ids: Dict[Vertex, int]
        ) -> "Tuple[np.ndarray, np.ndarray, np.ndarray]":
            indptr = np.zeros(len(vertices) + 1, dtype=np.int64)
            indices: List[int] = []
            for i, vertex in enumerate(vertices):
                indices.extend(
                    other_ids[nbr] for nbr in self._internal[vertex]
                )
                indptr[i + 1] = len(indices)
            idx = np.array(indices, dtype=np.int64)
            return indptr, idx, np.zeros(idx.shape[0], dtype=np.float64)

        self._csr = CSRBipartiteGraph(
            "region",
            [v.label for v in uppers],
            [v.label for v in lowers],
            *layer(uppers, lower_ids),
            *layer(lowers, upper_ids),
        )
        self._uppers, self._lowers = uppers, lowers
        owner_u: List[int] = []
        handles_u: List[Vertex] = []
        owner_l: List[int] = []
        handles_l: List[Vertex] = []
        for vertex, external in self._external.items():
            if vertex.side is Side.UPPER:
                owner, handles, i = owner_u, handles_u, upper_ids[vertex]
            else:
                owner, handles, i = owner_l, handles_l, lower_ids[vertex]
            owner.extend([i] * len(external))
            handles.extend(external)
        self._ext_arrays = (
            np.array(owner_u, dtype=np.int64),
            handles_u,
            np.array(owner_l, dtype=np.int64),
            handles_l,
        )

    def offsets(
        self,
        old_offsets: Dict[Vertex, int],
        primary_side: Side,
        threshold: int,
        shift: int = 0,
    ) -> Dict[Vertex, int]:
        """Region offsets at one level/half, external support frozen at old.

        Exact when the region is an S⁺/S⁻ candidate closure: every vertex
        outside it provably keeps its old offset, so an outside neighbour
        supports its region owner for secondary targets up to exactly that
        old offset.  ``shift=1`` instead freezes every external one step
        *above* its old offset (clamped at 0 from below) — the admissible
        optimum for an insertion, turning the peel into an upper bound used
        by the endpoint pre-screen.
        """
        if self._csr is not None:
            from repro.decomposition.csr_kernels import (
                csr_region_offsets_fixed_primary,
            )

            owner_u, handles_u, owner_l, handles_l = self._ext_arrays
            off_u, off_l = csr_region_offsets_fixed_primary(
                self._csr,
                owner_u,
                [max(old_offsets.get(h, 0) + shift, 0) for h in handles_u],
                owner_l,
                [max(old_offsets.get(h, 0) + shift, 0) for h in handles_l],
                primary_side,
                threshold,
            )
            result = dict(zip(self._uppers, off_u.tolist()))
            result.update(zip(self._lowers, off_l.tolist()))
            return result
        external = {
            vertex: [max(old_offsets.get(nbr, 0) + shift, 0) for nbr in ext]
            for vertex, ext in self._external.items()
        }
        return region_offsets_fixed_primary(
            self._internal, external, primary_side, threshold
        )


# --------------------------------------------------------------------------- #
# the patch journal
# --------------------------------------------------------------------------- #
@dataclass
class MaintenanceJournal:
    """What changed since the index was last persisted as a snapshot.

    The journal stores no entry data — the dict stores are always current —
    only *which* vertices of which levels are dirty, the applied graph
    operations, and the net set of vertices the updates removed.  Encoding a
    delta then reads the live stores for exactly the dirty vertices.  A base
    binding (directory, snapshot id, global-id map of the base's label order)
    is attached when the index is saved to / loaded from a snapshot;
    ``compatible`` turns False once an update introduces a vertex the base id
    space has never seen, at which point the next save rewrites a full
    snapshot instead of appending a delta.
    """

    ops: List[Tuple[str, Hashable, Hashable, float]] = field(default_factory=list)
    removed: Set[Vertex] = field(default_factory=set)
    dirty: Dict[Tuple[str, int], Set[Vertex]] = field(default_factory=dict)
    full_levels: Set[Tuple[str, int]] = field(default_factory=set)
    base_directory: Optional[str] = None
    base_id: Optional[str] = None
    base_sequence: int = 0
    base_delta: int = 0
    base_num_upper: int = 0
    base_num_vertices: int = 0
    base_global_ids: Optional[Dict[Vertex, int]] = None
    compatible: bool = True

    @property
    def has_changes(self) -> bool:
        return bool(self.ops or self.removed or self.dirty or self.full_levels)

    def record_insert(self, upper_label: Hashable, lower_label: Hashable, weight: float) -> None:
        self.ops.append(("insert", upper_label, lower_label, weight))
        self.removed.discard(Vertex(Side.UPPER, upper_label))
        self.removed.discard(Vertex(Side.LOWER, lower_label))

    def record_remove(self, upper_label: Hashable, lower_label: Hashable) -> None:
        self.ops.append(("remove", upper_label, lower_label, 0.0))

    def record_removed_vertices(self, vertices: Iterable[Vertex]) -> None:
        self.removed.update(vertices)

    def note_vertex(self, vertex: Vertex) -> None:
        """A (possibly new) vertex entered the graph."""
        if self.base_global_ids is not None and vertex not in self.base_global_ids:
            self.compatible = False

    def mark_dirty(self, key: Tuple[str, int], vertices: Iterable[Vertex]) -> None:
        if key in self.full_levels:
            return
        self.dirty.setdefault(key, set()).update(vertices)

    def mark_full(self, key: Tuple[str, int]) -> None:
        self.full_levels.add(key)
        self.dirty.pop(key, None)

    def bind_base(
        self,
        directory: str,
        snapshot_id: str,
        sequence: int,
        delta: int,
        num_upper: int,
        num_vertices: int,
        global_ids: Dict[Vertex, int],
    ) -> None:
        """Attach the journal to a persisted base and clear pending changes."""
        self.ops = []
        self.removed = set()
        self.dirty = {}
        self.full_levels = set()
        self.base_directory = directory
        self.base_id = snapshot_id
        self.base_sequence = sequence
        self.base_delta = delta
        self.base_num_upper = num_upper
        self.base_num_vertices = num_vertices
        self.base_global_ids = global_ids
        self.compatible = True

    def advance(self, sequence: int, delta: int) -> None:
        """A delta was persisted: clear pending changes, keep the base binding."""
        self.ops = []
        self.removed = set()
        self.dirty = {}
        self.full_levels = set()
        self.base_sequence = sequence
        self.base_delta = delta

    def can_append_to(self, directory: str) -> bool:
        return (
            self.base_directory == directory
            and bool(self.base_id)  # pre-delta-era snapshots carry no id
            and self.base_global_ids is not None
            and self.compatible
        )


# --------------------------------------------------------------------------- #
# the maintained index
# --------------------------------------------------------------------------- #
class DynamicDegeneracyIndex(DegeneracyIndex):
    """A :class:`DegeneracyIndex` that absorbs edge updates by region patching.

    ``max_chain_len`` is the optional auto-compaction policy: when set, a
    ``save_index(..., format="snapshot")`` that grows the on-disk delta chain
    to that length immediately folds it into a fresh base
    (:func:`repro.serving.compaction.compact_snapshot`) and re-binds the
    journal, so cold-start replay cost stays bounded under sustained churn.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        backend: str = "auto",
        region_budget: int = DEFAULT_REGION_BUDGET,
        n_jobs: int = 1,
        max_chain_len: Optional[int] = None,
    ) -> None:
        # Index a private copy so external mutation of the original graph
        # cannot silently desynchronise the index.  Either construction
        # backend works: both produce the same dict structures this class
        # patches during maintenance.
        super().__init__(graph.copy(), backend=backend, n_jobs=n_jobs)
        self._region_budget = region_budget
        self.max_chain_len = max_chain_len
        self._finish_init()

    def _finish_init(self) -> None:
        self._maintenance_seconds = 0.0
        self._updates_applied = 0
        # Vertices isolated from the start are the only ones besides an
        # update's own endpoints that discard_isolated() can ever drop; track
        # them once so their index entries are purged when that happens.
        self._pending_isolated: List[Vertex] = [
            vertex
            for vertex in self._graph.vertices()
            if self._graph.degree_of(vertex) == 0
        ]
        self._core_sizes: Dict[int, int] = {
            tau: sum(1 for offset in offsets.values() if offset >= tau)
            for tau, offsets in self._alpha_offsets.items()
        }
        self._journal = MaintenanceJournal()
        # True while the array path's id space enumerates exactly the graph's
        # current vertices (required before a full snapshot export).
        self._path_matches_graph = True
        # observability
        self._levels_patched = 0
        self._levels_rebuilt = 0
        self._levels_built = 0
        self._levels_dropped = 0
        self._region_updates = 0
        self._regions_peeled = 0
        self._reweight_updates = 0
        self._region_vertices_total = 0
        self._arrays_patched = 0
        self._arrays_invalidated = 0
        self._arrays_dropped = 0
        self._compactions = 0
        self._deltas_folded = 0

    @classmethod
    def from_snapshot(
        cls, snapshot: "SnapshotIndex", max_chain_len: Optional[int] = None
    ) -> "DynamicDegeneracyIndex":
        """Reopen a persisted snapshot as a mutable, maintainable index.

        The dict stores are reconstructed from the snapshot's flat level
        arrays (one linear pass per level — no from-scratch peel), and the
        journal is bound to the snapshot's directory so the next
        ``save_index(..., format="snapshot")`` to the same directory appends
        a delta instead of rewriting the base.  ``max_chain_len`` installs
        the auto-compaction policy, as in the constructor.
        """
        from repro.graph.csr import resolve_backend
        from repro.index.csr_build import level_dicts_from_arrays

        graph = snapshot.graph.copy()
        self = cls.__new__(cls)
        # Manual field initialisation: DegeneracyIndex.__init__ would trigger
        # a full rebuild, which from_snapshot exists to avoid.
        self._region_budget = DEFAULT_REGION_BUDGET
        self.max_chain_len = max_chain_len
        self._graph = graph
        self._backend = resolve_backend("auto", graph)
        self._n_jobs = 1
        self._delta = snapshot.delta
        self._alpha_lists = {}
        self._beta_lists = {}
        self._alpha_offsets = {}
        self._beta_offsets = {}
        self._array_path = None
        self._build_seconds = 0.0
        self._build_extra = {}
        handles = snapshot.global_handles()
        alive = [
            handle
            if handle is not None and graph.has_vertex(handle.side, handle.label)
            else None
            for handle in handles
        ]
        for (half, tau), arrays in snapshot.level_arrays().items():
            offsets, lists = level_dicts_from_arrays(
                arrays, alive, tau, alpha_half=(half == "alpha")
            )
            if half == "alpha":
                self._alpha_offsets[tau] = offsets
                self._alpha_lists[tau] = lists
            else:
                self._beta_offsets[tau] = offsets
                self._beta_lists[tau] = lists
        self._finish_init()
        self._journal.bind_base(
            str(snapshot.directory),
            snapshot.snapshot_id,
            snapshot.version,
            snapshot.delta,
            snapshot.num_upper,
            len(handles),
            {handle: gid for gid, handle in enumerate(handles)},
        )
        return self

    # ------------------------------------------------------------------ #
    # public update API
    # ------------------------------------------------------------------ #
    def insert_edge(
        self, upper_label: Hashable, lower_label: Hashable, weight: float = 1.0
    ) -> None:
        """Insert (or re-weight) an edge and patch the affected index levels."""
        with Timer() as timer:
            reweight = self._graph.has_edge(upper_label, lower_label)
            self._graph.add_edge(upper_label, lower_label, weight)
            self._journal.record_insert(upper_label, lower_label, weight)
            for vertex in (
                Vertex(Side.UPPER, upper_label),
                Vertex(Side.LOWER, lower_label),
            ):
                self._journal.note_vertex(vertex)
                self._note_vertex_for_arrays(vertex)
            if reweight:
                # Offsets depend only on the structure: a pure re-weight
                # touches nothing but the two mirrored entry weights per level.
                self._reweight_updates += 1
                self._reweight_entries(upper_label, lower_label, weight)
            else:
                self._refresh_after_update(upper_label, lower_label)
        self._maintenance_seconds += timer.elapsed
        self._updates_applied += 1

    def remove_edge(self, upper_label: Hashable, lower_label: Hashable) -> None:
        """Remove an edge and patch the affected index levels."""
        with Timer() as timer:
            self._graph.remove_edge(upper_label, lower_label)
            self._graph.discard_isolated()
            self._journal.record_remove(upper_label, lower_label)
            self._refresh_after_update(upper_label, lower_label, can_grow=False)
        self._maintenance_seconds += timer.elapsed
        self._updates_applied += 1

    @property
    def journal(self) -> MaintenanceJournal:
        """The pending-changes journal consumed by snapshot delta saves."""
        return self._journal

    @property
    def region_budget(self) -> int:
        return self._region_budget

    # ------------------------------------------------------------------ #
    # array-path bookkeeping
    # ------------------------------------------------------------------ #
    def _note_vertex_for_arrays(self, vertex: Vertex) -> None:
        """Drop the array path when a never-seen vertex enters the graph.

        A vertex that vanished earlier and comes back reuses its old global
        id (labels are interned for the path's lifetime), so only genuinely
        new labels force a rebuild of the id space.
        """
        path = self._array_path
        if path is not None and not path.has_vertex(vertex):
            self._array_path = None
            self._path_matches_graph = True
            self._arrays_invalidated += 1

    def export_level_arrays(self) -> "Dict[Tuple[str, int], LevelArrays]":
        """See :meth:`DegeneracyIndex.export_level_arrays`.

        A maintained index may carry dead ids in its array path (vertices
        removed since the path was built); a full snapshot export needs the
        id space to match the graph exactly, so the path is rebuilt first
        when they diverged.
        """
        if not self._path_matches_graph:
            self._array_path = None
            self._path_matches_graph = True
        return super().export_level_arrays()

    # ------------------------------------------------------------------ #
    # vanished-vertex bookkeeping (unchanged semantics from the component era)
    # ------------------------------------------------------------------ #
    def _vanished_vertices(
        self, upper_label: Hashable, lower_label: Hashable
    ) -> Tuple[Vertex, ...]:
        """Vertices dropped from the graph by the current update.

        Removing an edge can newly isolate (and thus discard) only its own
        two endpoints; the only other vertices ``discard_isolated`` can drop
        are the ones isolated since construction, tracked in
        ``self._pending_isolated``.
        """
        candidates = [Vertex(Side.UPPER, upper_label), Vertex(Side.LOWER, lower_label)]
        if self._pending_isolated:
            candidates.extend(self._pending_isolated)
            self._pending_isolated = [
                vertex
                for vertex in self._pending_isolated
                if self._graph.has_vertex(vertex.side, vertex.label)
            ]
        return tuple(
            vertex
            for vertex in candidates
            if not self._graph.has_vertex(vertex.side, vertex.label)
        )

    def _purge_vertices(self, vertices: Tuple[Vertex, ...]) -> None:
        """Drop every index entry owned by ``vertices`` and patch the arrays."""
        if not vertices:
            return
        self._journal.record_removed_vertices(vertices)
        for tau, offsets in self._alpha_offsets.items():
            for vertex in vertices:
                if offsets.get(vertex, 0) >= tau:
                    self._core_sizes[tau] = self._core_sizes.get(tau, 0) - 1
        for stores in (
            self._alpha_offsets,
            self._beta_offsets,
            self._alpha_lists,
            self._beta_lists,
        ):
            for level in stores.values():
                for vertex in vertices:
                    level.pop(vertex, None)
        for tau in self._alpha_offsets:
            for half in ("alpha", "beta"):
                self._journal.mark_dirty((half, tau), vertices)
        path = self._array_path
        if path is None:
            return
        self._path_matches_graph = False
        wiped = [
            gid for gid in (path.global_id(v) for v in vertices) if gid is not None
        ]
        if not wiped:
            return
        from repro.index.csr_build import entries_to_patch_arrays, patch_level_arrays

        gids, counts, ev, ew, eo = entries_to_patch_arrays({g: [] for g in wiped})
        zeros = np.zeros(gids.shape[0], dtype=np.int64)
        for key in path.level_keys():
            path.set_level(
                key,
                patch_level_arrays(
                    path.level(key), gids, counts, ev, ew, eo, gids, zeros
                ),
            )

    # ------------------------------------------------------------------ #
    # the update pipeline
    # ------------------------------------------------------------------ #
    def _affected_levels(
        self, upper_label: Hashable, lower_label: Hashable, removal: bool
    ) -> List[int]:
        """Levels the update can possibly change (a sound prefilter).

        A core at ``(τ,β)`` differs between the old and new graph only when
        the updated edge lies *inside* the differing core, so both endpoints
        must belong to it.  For an insertion that requires the fixed-primary
        endpoint to have degree ≥ τ; for a removal it requires both endpoints
        to have had a non-zero old offset at that level.  Offsets fall off
        quickly with τ, so this cuts the per-update work from every level to
        the handful the edge actually touches.  Must run *before* the purge
        (a vanished endpoint's old offsets are part of the evidence).
        """
        u = Vertex(Side.UPPER, upper_label)
        v = Vertex(Side.LOWER, lower_label)
        affected: List[int] = []
        if removal:
            for tau in range(1, self._delta + 1):
                sa = self._alpha_offsets.get(tau, {})
                sb = self._beta_offsets.get(tau, {})
                if (sa.get(u, 0) >= 1 and sa.get(v, 0) >= 1) or (
                    sb.get(u, 0) >= 1 and sb.get(v, 0) >= 1
                ):
                    affected.append(tau)
        else:
            cap = max(
                self._graph.degree(Side.UPPER, upper_label),
                self._graph.degree(Side.LOWER, lower_label),
            )
            affected.extend(range(1, min(self._delta, cap) + 1))
        return affected

    def _refresh_after_update(
        self, upper_label: Hashable, lower_label: Hashable, can_grow: bool = True
    ) -> None:
        levels = self._affected_levels(upper_label, lower_label, removal=not can_grow)
        self._purge_vertices(self._vanished_vertices(upper_label, lower_label))
        endpoints = [
            vertex
            for vertex in (
                Vertex(Side.UPPER, upper_label),
                Vertex(Side.LOWER, lower_label),
            )
            if self._graph.has_vertex(vertex.side, vertex.label)
        ]
        if endpoints and levels:
            self._region_updates += 1
            self._patch_levels(endpoints, levels, removal=not can_grow)
        self._adjust_degeneracy(endpoints, can_grow)

    def _patch_levels(
        self, endpoints: Sequence[Vertex], levels: Sequence[int], removal: bool
    ) -> None:
        """Re-peel each affected level inside its S⁺/S⁻ candidate region.

        The first changed vertex of any cascade is an endpoint (the updated
        edge is the only thing that changed), so each level and half is
        pre-screened by asking only whether an *endpoint* moves there: a
        removal is screened with an exact support count at the endpoint's
        old offset, an insertion with a two-vertex optimistic mini-peel that
        upper-bounds the endpoints' new offsets.  Levels that pass touch
        nothing but the endpoints' own entry lists.  Levels that fail get a
        candidate closure per half, peeled with the frozen-boundary kernels
        — exact, because non-candidates provably keep their offsets.  Only a
        closure that blows past the region budget sends its level down the
        full re-peel fallback.
        """
        frozen = None
        full_vertices: Optional[List[Vertex]] = None
        mini = None if removal else _RegionPeel(self._graph, endpoints, "dict")
        for tau in levels:
            if tau > self._delta:  # pragma: no cover - defensive
                break
            sa_old = self._alpha_offsets.get(tau, {})
            sb_old = self._beta_offsets.get(tau, {})
            halves = []
            overflow = False
            for primary, old in ((Side.UPPER, sa_old), (Side.LOWER, sb_old)):
                if self._endpoints_hold(endpoints, old, primary, tau, removal, mini):
                    halves.append(None)
                    continue
                region = plan_level_region(
                    self._graph, old, primary, tau, endpoints, removal,
                    self._region_budget,
                )
                if region is None:
                    overflow = True
                    break
                new = _RegionPeel(self._graph, region, self._backend).offsets(
                    old, primary, tau
                )
                self._region_vertices_total += len(region)
                self._regions_peeled += 1
                halves.append((region, new))
            if overflow:
                # The closure outgrew the budget: re-peel the whole graph at
                # this level (other components diff to no-ops in the patch).
                if frozen is None and self._backend == "csr":
                    from repro.graph.csr import freeze

                    frozen = freeze(self._graph)
                if full_vertices is None:
                    full_vertices = list(self._graph.vertices())
                sa_new = self._full_level_offsets(tau, Side.UPPER, frozen)
                sb_new = self._full_level_offsets(tau, Side.LOWER, frozen)
                self._apply_level_patch(tau, full_vertices, sa_new, sb_new, endpoints)
                self._levels_rebuilt += 1
                continue
            merged: Set[Vertex] = set(endpoints)
            for half in halves:
                if half is not None:
                    merged.update(half[0])
            touched = list(merged)
            sa_new = halves[0][1] if halves[0] else {}
            sb_new = halves[1][1] if halves[1] else {}
            sa_new = {v: sa_new.get(v, sa_old.get(v, 0)) for v in touched}
            sb_new = {v: sb_new.get(v, sb_old.get(v, 0)) for v in touched}
            self._apply_level_patch(tau, touched, sa_new, sb_new, endpoints)
            self._levels_patched += 1

    def _endpoints_hold(
        self,
        endpoints: Sequence[Vertex],
        old: Dict[Vertex, int],
        primary_side: Side,
        tau: int,
        removal: bool,
        mini: Optional[_RegionPeel],
    ) -> bool:
        """True when provably neither endpoint's offset moves at this half.

        Removal: an endpoint keeps its old offset exactly when its support
        at that offset (counted over the already-updated graph, everyone
        else at their old offsets) still meets the peeling requirement — and
        if both endpoints hold, no cascade can start.  Insertion: the
        two-vertex mini-peel with every external frozen one step above its
        old offset upper-bounds the endpoints' new offsets; if neither bound
        exceeds the old value, nothing rises.
        """
        graph = self._graph
        if removal:
            for vertex in endpoints:
                offset = old.get(vertex, 0)
                if offset < 1:
                    continue
                need = tau if vertex.side is primary_side else offset
                other = vertex.side.other
                support = 0
                for nbr_label in graph.neighbors(vertex.side, vertex.label):
                    if old.get(Vertex(other, nbr_label), 0) >= offset:
                        support += 1
                        if support >= need:
                            break
                if support < need:
                    return False
            return True
        bounds = mini.offsets(old, primary_side, tau, shift=1)
        return all(bounds[vertex] <= old.get(vertex, 0) for vertex in endpoints)

    def _full_level_offsets(
        self, tau: int, primary_side: Side, frozen: "Optional[CSRBipartiteGraph]"
    ) -> Dict[Vertex, int]:
        """One level's offsets over the whole graph (the budget fallback)."""
        if frozen is not None:
            from repro.decomposition.csr_kernels import csr_offsets_fixed_primary
            from repro.decomposition.offsets import offsets_dict_from_arrays

            off_u, off_l = csr_offsets_fixed_primary(frozen, primary_side, tau)
            return offsets_dict_from_arrays(frozen, off_u, off_l)
        from repro.decomposition.offsets import alpha_offsets, beta_offsets

        if primary_side is Side.UPPER:
            return alpha_offsets(self._graph, tau, backend="dict")
        return beta_offsets(self._graph, tau, backend="dict")

    def _apply_level_patch(
        self,
        tau: int,
        touched: Sequence[Vertex],
        sa_new: Dict[Vertex, int],
        sb_new: Dict[Vertex, int],
        endpoints: Sequence[Vertex],
    ) -> None:
        """Splice one level's recomputed offsets into dicts and arrays.

        Most levels a peel touches end up unchanged, so the patch is driven
        by the vertices whose offsets actually moved: only they, their
        neighbours (whose sorted entries embed the moved offsets) and the
        update's endpoints (whose adjacency changed) get their lists rebuilt,
        spliced into the arrays and marked dirty in the journal.  Changed
        vertices are always interior (the pinch verified the boundary), so
        every rebuilt list stays inside the peeled region.

        Contract: splice recomputed per-vertex entries and offsets of one level; vertices outside the patched set are untouched.
        """
        sa = self._alpha_offsets.setdefault(tau, {})
        sb = self._beta_offsets.setdefault(tau, {})
        alpha_lists = self._alpha_lists.setdefault(tau, {})
        beta_lists = self._beta_lists.setdefault(tau, {})
        graph = self._graph

        changed: List[Vertex] = []
        core_delta = 0
        for vertex in touched:
            new_a = sa_new[vertex]
            new_b = sb_new[vertex]
            if sa.get(vertex, 0) != new_a or sb.get(vertex, 0) != new_b or vertex not in sa:
                changed.append(vertex)
                core_delta += (new_a >= tau) - (sa.get(vertex, 0) >= tau)
                sa[vertex] = new_a
                sb[vertex] = new_b
        self._core_sizes[tau] = self._core_sizes.get(tau, 0) + core_delta

        rebuild: Set[Vertex] = set(endpoints)
        for vertex in changed:
            rebuild.add(vertex)
            other = vertex.side.other
            rebuild.update(
                Vertex(other, nbr_label)
                for nbr_label in graph.neighbors(vertex.side, vertex.label)
            )

        for vertex in rebuild:
            if sa.get(vertex, 0) < tau:
                alpha_lists.pop(vertex, None)
                beta_lists.pop(vertex, None)
                continue
            other = vertex.side.other
            alpha_entries: List[Tuple[Vertex, float, int]] = []
            beta_entries: List[Tuple[Vertex, float, int]] = []
            for nbr_label, weight in graph.neighbors(vertex.side, vertex.label).items():
                nbr = Vertex(other, nbr_label)
                nbr_sa = sa.get(nbr, 0)
                if nbr_sa >= tau:
                    alpha_entries.append((nbr, weight, nbr_sa))
                nbr_sb = sb.get(nbr, 0)
                if nbr_sb > tau:
                    beta_entries.append((nbr, weight, nbr_sb))
            alpha_entries.sort(key=lambda entry: -entry[2])
            beta_entries.sort(key=lambda entry: -entry[2])
            alpha_lists[vertex] = alpha_entries
            if beta_entries:
                beta_lists[vertex] = beta_entries
            else:
                beta_lists.pop(vertex, None)

        if not rebuild:
            return
        rebuild_list = list(rebuild)
        for half in ("alpha", "beta"):
            self._journal.mark_dirty((half, tau), rebuild_list)
        self._patch_arrays(tau, rebuild_list, sa, sb, alpha_lists, beta_lists)

    def _patch_arrays(
        self,
        tau: int,
        touched: Sequence[Vertex],
        sa: Dict[Vertex, int],
        sb: Dict[Vertex, int],
        alpha_lists: AdjacencyLists,
        beta_lists: AdjacencyLists,
    ) -> None:
        """Splice the patched vertices into any materialised level arrays."""
        path = self._array_path
        if path is None:
            return
        from repro.index.csr_build import entries_to_patch_arrays, patch_level_arrays

        for half, offsets, lists in (
            ("alpha", sa, alpha_lists),
            ("beta", sb, beta_lists),
        ):
            key = (half, tau)
            if not path.has_level(key):
                continue  # will be converted lazily from the patched dicts
            updates: Dict[int, List[Tuple[int, float, int]]] = {}
            offset_gids: List[int] = []
            offset_values: List[int] = []
            encodable = True
            for vertex in touched:
                gid = path.global_id(vertex)
                if gid is None:  # pragma: no cover - new vertices drop the path
                    encodable = False
                    break
                encoded: List[Tuple[int, float, int]] = []
                for nbr, weight, offset in lists.get(vertex) or ():
                    nbr_gid = path.global_id(nbr)
                    if nbr_gid is None:  # pragma: no cover - same guard
                        encodable = False
                        break
                    encoded.append((nbr_gid, weight, offset))
                if not encodable:
                    break
                updates[gid] = encoded
                offset_gids.append(gid)
                offset_values.append(offsets.get(vertex, 0))
            if not encodable:
                path.drop_level(key)
                self._arrays_dropped += 1
                continue
            gids, counts, ev, ew, eo = entries_to_patch_arrays(updates)
            path.set_level(
                key,
                patch_level_arrays(
                    path.level(key),
                    gids,
                    counts,
                    ev,
                    ew,
                    eo,
                    np.array(offset_gids, dtype=np.int64),
                    np.array(offset_values, dtype=np.int64),
                ),
            )
            self._arrays_patched += 1

    def _reweight_entries(
        self, upper_label: Hashable, lower_label: Hashable, weight: float
    ) -> None:
        """Rewrite the two mirrored entry weights of one edge at every level."""
        u = Vertex(Side.UPPER, upper_label)
        v = Vertex(Side.LOWER, lower_label)
        for tau in range(1, self._delta + 1):
            for lists in (self._alpha_lists.get(tau), self._beta_lists.get(tau)):
                if not lists:
                    continue
                for owner, other in ((u, v), (v, u)):
                    entries = lists.get(owner)
                    if not entries:
                        continue
                    for i, (nbr, _, offset) in enumerate(entries):
                        if nbr == other:
                            entries[i] = (nbr, weight, offset)
                            break
            for half in ("alpha", "beta"):
                self._journal.mark_dirty((half, tau), (u, v))
        path = self._array_path
        if path is None:
            return
        gid_u, gid_v = path.global_id(u), path.global_id(v)
        if gid_u is None or gid_v is None:  # pragma: no cover - guarded upstream
            return
        for key in path.level_keys():
            arrays = path.level(key)
            writable = arrays.entry_weight.flags.writeable
            for owner, other in ((gid_u, gid_v), (gid_v, gid_u)):
                lo, hi = int(arrays.indptr[owner]), int(arrays.indptr[owner + 1])
                for pos in range(lo, hi):
                    if int(arrays.entry_vertex[pos]) == other:
                        if not writable:  # pragma: no cover - snapshot-backed path
                            path.drop_level(key)
                            self._arrays_dropped += 1
                        else:
                            arrays.entry_weight[pos] = weight
                        break
                if not writable:
                    break
            else:
                self._arrays_patched += 1

    # ------------------------------------------------------------------ #
    # incremental degeneracy
    # ------------------------------------------------------------------ #
    def _adjust_degeneracy(self, endpoints: Sequence[Vertex], can_grow: bool) -> None:
        # Shrink: the patched core sizes say whether the (δ,δ)-core survived.
        while self._delta > 0 and self._core_sizes.get(self._delta, 0) <= 0:
            self._drop_level(self._delta)
            self._delta -= 1

        if not can_grow:  # removing an edge can never raise the degeneracy
            return
        # Growth: a new (δ+1,δ+1)-core must contain the updated edge, so both
        # endpoints must sit in the current (δ,δ)-core — an O(1) pre-screen
        # that rejects almost every update before the candidate peel runs.
        while True:
            next_tau = self._delta + 1
            if self._delta == 0:
                if self._graph.num_edges == 0:
                    return
                candidates: Optional[Set[Vertex]] = None
            else:
                offsets = self._alpha_offsets[self._delta]
                if len(endpoints) < 2 or any(
                    offsets.get(vertex, 0) < self._delta for vertex in endpoints
                ):
                    return
                candidates = {
                    vertex
                    for vertex, offset in offsets.items()
                    if offset >= self._delta
                }
            scope = (
                self._graph
                if candidates is None
                else induced_subgraph(self._graph, candidates)
            )
            core = abcore_vertices(scope, next_tau, next_tau, backend="dict")
            if not core:
                return
            self._build_fresh_level(next_tau)
            self._delta = next_tau

    def _drop_level(self, tau: int) -> None:
        self._alpha_lists.pop(tau, None)
        self._beta_lists.pop(tau, None)
        self._alpha_offsets.pop(tau, None)
        self._beta_offsets.pop(tau, None)
        self._core_sizes.pop(tau, None)
        self._levels_dropped += 1
        path = self._array_path
        if path is not None:
            path.drop_level(("alpha", tau))
            path.drop_level(("beta", tau))

    def _build_fresh_level(self, tau: int) -> None:
        """A level the maintained index did not have yet: build it in full."""
        self._build_level(tau)
        self._core_sizes[tau] = sum(
            1 for offset in self._alpha_offsets[tau].values() if offset >= tau
        )
        self._levels_built += 1
        for half in ("alpha", "beta"):
            self._journal.mark_full((half, tau))
        # The fresh level's arrays are converted lazily from the new dicts.

    # ------------------------------------------------------------------ #
    def stats(self) -> IndexStats:
        stats = super().stats()
        stats.name = "Idelta-dynamic"
        patch_attempts = self._arrays_patched + self._arrays_invalidated + self._arrays_dropped
        stats.extra.update(
            {
                "maintenance_seconds": self._maintenance_seconds,
                "updates_applied": float(self._updates_applied),
                "levels_patched": float(self._levels_patched),
                "levels_rebuilt": float(self._levels_rebuilt),
                "levels_built": float(self._levels_built),
                "levels_dropped": float(self._levels_dropped),
                "region_updates": float(self._region_updates),
                "reweight_updates": float(self._reweight_updates),
                "region_mean_vertices": (
                    self._region_vertices_total / self._regions_peeled
                    if self._regions_peeled
                    else 0.0
                ),
                "arrays_patched": float(self._arrays_patched),
                "arrays_invalidated": float(self._arrays_invalidated),
                "arrays_dropped": float(self._arrays_dropped),
                "arrays_patch_hit_rate": (
                    self._arrays_patched / patch_attempts if patch_attempts else 1.0
                ),
                "chain_length": float(self._journal.base_sequence),
                "compactions": float(self._compactions),
                "deltas_folded": float(self._deltas_folded),
            }
        )
        return stats

    def note_compaction(self, folded_deltas: int) -> None:
        """Record an auto-compaction of this index's snapshot directory.

        Called by :func:`repro.index.serialization.save_index` after a
        policy-triggered fold so ``stats().extra`` reports how many
        compactions ran and how many delta segments they absorbed.
        """
        self._compactions += 1
        self._deltas_folded += folded_deltas
