"""Maintenance of the degeneracy-bounded index under edge updates.

The paper sketches incremental maintenance for ``I_δ``: after inserting or
removing an edge ``(u, v)`` only the offsets of vertices inside the affected
connected region can change, and only the index levels that region touches
need refreshing.

This implementation follows that outline at component granularity: offsets at
a fixed level depend only on the connected component of the graph containing a
vertex, so every level is rebuilt *only for the component that contains the
updated edge*; entries of all other components are reused as-is.  If the
degeneracy changes, levels are added or dropped accordingly.  This is coarser
than the paper's `S⁺`/`S⁻` regions (which further restrict the recomputation
within the component) but has the same worst-case O(δ·m) bound and, crucially,
is always consistent with a from-scratch rebuild — a property the test suite
checks directly.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.decomposition.degeneracy import degeneracy
from repro.decomposition.offsets import alpha_offsets, beta_offsets
from repro.graph.bipartite import BipartiteGraph, Side, Vertex
from repro.graph.views import induced_subgraph
from repro.index.base import IndexStats
from repro.index.degeneracy_index import DegeneracyIndex
from repro.utils.timer import Timer

__all__ = ["DynamicDegeneracyIndex"]


class DynamicDegeneracyIndex(DegeneracyIndex):
    """A :class:`DegeneracyIndex` that can absorb edge insertions and removals."""

    def __init__(self, graph: BipartiteGraph, backend: str = "auto") -> None:
        # Index a private copy so external mutation of the original graph
        # cannot silently desynchronise the index.  Either construction
        # backend works: both produce the same dict structures this class
        # patches during maintenance.
        super().__init__(graph.copy(), backend=backend)
        self._maintenance_seconds = 0.0
        self._updates_applied = 0
        # Vertices isolated from the start are the only ones besides an
        # update's own endpoints that discard_isolated() can ever drop; track
        # them once so their index entries are purged when that happens.
        self._pending_isolated: List[Vertex] = [
            vertex
            for vertex in self._graph.vertices()
            if self._graph.degree_of(vertex) == 0
        ]

    # ------------------------------------------------------------------ #
    # public update API
    # ------------------------------------------------------------------ #
    def insert_edge(self, upper_label: Hashable, lower_label: Hashable, weight: float = 1.0) -> None:
        """Insert (or re-weight) an edge and refresh the affected index levels."""
        with Timer() as timer:
            self._graph.add_edge(upper_label, lower_label, weight)
            self._refresh_after_update(upper_label, lower_label)
        self._maintenance_seconds += timer.elapsed
        self._updates_applied += 1

    def remove_edge(self, upper_label: Hashable, lower_label: Hashable) -> None:
        """Remove an edge and refresh the affected index levels."""
        with Timer() as timer:
            self._graph.remove_edge(upper_label, lower_label)
            self._graph.discard_isolated()
            self._refresh_after_update(upper_label, lower_label)
        self._maintenance_seconds += timer.elapsed
        self._updates_applied += 1

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _affected_component(
        self, upper_label: Hashable, lower_label: Hashable
    ) -> Optional[Set[Vertex]]:
        """Vertices of the component(s) containing the updated edge endpoints."""
        affected: Set[Vertex] = set()
        for vertex in (Vertex(Side.UPPER, upper_label), Vertex(Side.LOWER, lower_label)):
            if self._graph.has_vertex(vertex.side, vertex.label) and vertex not in affected:
                affected |= self._graph.connected_component_vertices(vertex)
        return affected or None

    def _vanished_vertices(
        self, upper_label: Hashable, lower_label: Hashable
    ) -> Tuple[Vertex, ...]:
        """Vertices dropped from the graph by the current update.

        Removing an edge can newly isolate (and thus discard) only its own
        two endpoints; the only other vertices ``discard_isolated`` can drop
        are the ones isolated since construction, tracked in
        ``self._pending_isolated``.  Together these are the only vertices
        whose index entries can go stale without being covered by the
        affected-component refresh.
        """
        candidates = [Vertex(Side.UPPER, upper_label), Vertex(Side.LOWER, lower_label)]
        if self._pending_isolated:
            candidates.extend(self._pending_isolated)
            self._pending_isolated = [
                vertex
                for vertex in self._pending_isolated
                if self._graph.has_vertex(vertex.side, vertex.label)
            ]
        return tuple(
            vertex
            for vertex in candidates
            if not self._graph.has_vertex(vertex.side, vertex.label)
        )

    def _purge_vertices(self, vertices: Tuple[Vertex, ...]) -> None:
        """Drop every index entry owned by ``vertices`` at every level."""
        if not vertices:
            return
        for stores in (
            self._alpha_offsets,
            self._beta_offsets,
            self._alpha_lists,
            self._beta_lists,
        ):
            for level in stores.values():
                for vertex in vertices:
                    level.pop(vertex, None)

    def _refresh_after_update(self, upper_label: Hashable, lower_label: Hashable) -> None:
        new_delta = degeneracy(self._graph, backend=self._backend)
        affected = self._affected_component(upper_label, lower_label)
        self._invalidate_query_arrays()

        # Drop levels that no longer exist.
        for tau in range(new_delta + 1, self._delta + 1):
            self._alpha_lists.pop(tau, None)
            self._beta_lists.pop(tau, None)
            self._alpha_offsets.pop(tau, None)
            self._beta_offsets.pop(tau, None)

        previous_delta = self._delta
        self._delta = new_delta
        # Vertices discarded by the update must be purged even when no
        # component is left to refresh (e.g. removing an isolated degree-1 /
        # degree-1 edge): otherwise vertices_in_core keeps reporting them.
        self._purge_vertices(self._vanished_vertices(upper_label, lower_label))
        if affected is None:
            return

        region = induced_subgraph(self._graph, affected)
        for tau in range(1, new_delta + 1):
            if tau > previous_delta:
                # Brand new level: build it over the whole graph.
                self._build_level(tau)
                continue
            self._refresh_level_for_region(tau, region, affected)

    def _refresh_level_for_region(
        self, tau: int, region: BipartiteGraph, affected: Set[Vertex]
    ) -> None:
        """Recompute level ``tau`` entries for the vertices of ``affected`` only."""
        sa_region = alpha_offsets(region, tau, backend=self._backend)
        sb_region = beta_offsets(region, tau, backend=self._backend)

        sa = self._alpha_offsets.setdefault(tau, {})
        sb = self._beta_offsets.setdefault(tau, {})
        alpha_lists = self._alpha_lists.setdefault(tau, {})
        beta_lists = self._beta_lists.setdefault(tau, {})

        # Remove stale entries for affected vertices, then re-add them.  Only
        # the affected region (plus the update's endpoints, purged upfront in
        # _refresh_after_update) can hold stale entries, so no whole-store
        # sweep is needed — that sweep used to cost O(δ·n) per edge update
        # regardless of how small the touched component was.
        for vertex in affected:
            sa.pop(vertex, None)
            sb.pop(vertex, None)
            alpha_lists.pop(vertex, None)
            beta_lists.pop(vertex, None)

        for vertex, offset in sa_region.items():
            sa[vertex] = offset
        for vertex, offset in sb_region.items():
            sb[vertex] = offset

        for vertex in affected:
            offset = sa.get(vertex, 0)
            if offset < tau:
                continue
            other = vertex.side.other
            alpha_entries: List[Tuple[Vertex, float, int]] = []
            beta_entries: List[Tuple[Vertex, float, int]] = []
            for nbr_label, weight in self._graph.neighbors(vertex.side, vertex.label).items():
                nbr = Vertex(other, nbr_label)
                nbr_sa = sa.get(nbr, 0)
                if nbr_sa >= tau:
                    alpha_entries.append((nbr, weight, nbr_sa))
                nbr_sb = sb.get(nbr, 0)
                if nbr_sb > tau:
                    beta_entries.append((nbr, weight, nbr_sb))
            alpha_entries.sort(key=lambda entry: -entry[2])
            beta_entries.sort(key=lambda entry: -entry[2])
            alpha_lists[vertex] = alpha_entries
            if beta_entries:
                beta_lists[vertex] = beta_entries

    # ------------------------------------------------------------------ #
    def stats(self) -> IndexStats:
        stats = super().stats()
        stats.name = "Idelta-dynamic"
        stats.extra["maintenance_seconds"] = self._maintenance_seconds
        stats.extra["updates_applied"] = float(self._updates_applied)
        return stats
