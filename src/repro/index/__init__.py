"""Indexes for optimal retrieval of (α,β)-communities.

* :mod:`~repro.index.queries` — the online, index-free query ``Qo``.
* :mod:`~repro.index.bicore_index` — the vertex-level bicore index ``Iv`` and
  its query ``Qv`` (the baseline of Liu et al., WWW 2019).
* :mod:`~repro.index.basic_index` — the basic edge-level indexes ``Iα_bs`` /
  ``Iβ_bs`` (Section III-A, Algorithms 1–2).
* :mod:`~repro.index.degeneracy_index` — the degeneracy-bounded index ``I_δ``
  and its optimal query ``Qopt`` (Section III-B, Algorithm 3).
* :mod:`~repro.index.maintenance` — edge insertion / removal maintenance.
* :mod:`~repro.index.serialization` — saving and loading built indexes.
"""

from repro.index.base import CommunityIndex, IndexStats
from repro.index.basic_index import BasicIndex
from repro.index.bicore_index import BicoreIndex
from repro.index.degeneracy_index import DegeneracyIndex
from repro.index.maintenance import DynamicDegeneracyIndex
from repro.index.queries import online_community_query

__all__ = [
    "CommunityIndex",
    "IndexStats",
    "BicoreIndex",
    "BasicIndex",
    "DegeneracyIndex",
    "DynamicDegeneracyIndex",
    "online_community_query",
]
