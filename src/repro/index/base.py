"""Shared interface and bookkeeping for the community-retrieval indexes."""

from __future__ import annotations

import abc
import contextlib
import gc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.index.traversal import ArrayQueryPath

from repro.exceptions import EmptyCommunityError, InvalidParameterError
from repro.graph.bipartite import BipartiteGraph, Vertex

__all__ = [
    "IndexStats",
    "CommunityIndex",
    "gc_paused",
    "BatchQuery",
    "ON_EMPTY_POLICIES",
    "apply_batch_policy",
    "check_on_empty",
]

#: One retrieval of a batch: ``(query vertex, alpha, beta)``.
BatchQuery = Tuple[Vertex, int, int]

#: Accepted values of every ``on_empty=`` parameter of the batch query APIs:
#: ``"raise"`` propagates the first :class:`EmptyCommunityError` (the
#: sequential semantics), ``"none"`` keeps a ``None`` placeholder so results
#: stay aligned with the input order, ``"skip"`` silently drops the query.
ON_EMPTY_POLICIES = ("raise", "none", "skip")


def check_on_empty(on_empty: str) -> None:
    """Validate an ``on_empty=`` batch policy argument."""
    if on_empty not in ON_EMPTY_POLICIES:
        raise InvalidParameterError(
            f"unknown on_empty policy {on_empty!r}; expected one of {ON_EMPTY_POLICIES}"
        )


def apply_batch_policy(
    queries: "Iterable[BatchQuery]",
    answer_one: "Callable[[Vertex, int, int], object]",
    on_empty: str,
) -> List:
    """Answer every ``(query, alpha, beta)`` triple under one empty-policy.

    The single implementation of the ``on_empty`` semantics shared by every
    batch entry point: ``answer_one(query, alpha, beta)`` produces one
    answer, an :class:`EmptyCommunityError` is propagated (``"raise"``),
    recorded as ``None`` (``"none"``) or dropped (``"skip"``); any other
    exception always propagates.
    """
    check_on_empty(on_empty)
    results: List = []
    for query, alpha, beta in queries:
        try:
            results.append(answer_one(query, alpha, beta))
        except EmptyCommunityError:
            if on_empty == "raise":
                raise
            if on_empty == "none":
                results.append(None)
    return results


@contextlib.contextmanager
def gc_paused() -> Iterator[None]:
    """Pause cyclic garbage collection for the duration of a bulk build.

    Index construction allocates millions of long-lived acyclic objects
    (entry tuples, vertex handles, per-level dicts); letting the generational
    collector repeatedly scan them can more than double the build time on
    large graphs.  The caller's GC state is restored on exit.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


@dataclass
class IndexStats:
    """Size and build-time statistics reported by every index.

    ``entries`` counts the atomic stored items (per-vertex offsets for the
    bicore index, adjacency entries for the edge-level indexes); it is the
    quantity Figure 11 of the paper compares across indexes.
    """

    name: str
    entries: int = 0
    adjacency_lists: int = 0
    build_seconds: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        data: Dict[str, float] = {
            "entries": self.entries,
            "adjacency_lists": self.adjacency_lists,
            "build_seconds": self.build_seconds,
        }
        data.update(self.extra)
        return data


class CommunityIndex(abc.ABC):
    """Abstract base class of all (α,β)-community indexes.

    Every index is built once for a graph and then answers
    :meth:`community` queries: the connected component of a query vertex in
    the (α,β)-core, returned as a weighted edge subgraph.
    """

    def __init__(self, graph: BipartiteGraph) -> None:
        self._graph = graph

    @property
    def graph(self) -> BipartiteGraph:
        """The graph this index was built for."""
        return self._graph

    @abc.abstractmethod
    def community(self, query: Vertex, alpha: int, beta: int) -> BipartiteGraph:
        """Return ``C_{α,β}(query)``.

        Raises :class:`~repro.exceptions.EmptyCommunityError` when the query
        vertex is not contained in the (α,β)-core.
        """

    def batch_community(
        self,
        queries: Iterable[BatchQuery],
        on_empty: str = "raise",
    ) -> List[Optional[BipartiteGraph]]:
        """Answer a stream of ``(query, alpha, beta)`` triples in input order.

        Generic implementation: one :meth:`community` call per query.
        Subclasses with an array-backed query path override this to amortise
        index freezing across the stream.  ``on_empty`` decides what happens
        to queries outside their (α,β)-core: ``"raise"`` (default, sequential
        semantics), ``"none"`` (aligned ``None`` placeholder) or ``"skip"``
        (drop the query from the output).
        """
        return apply_batch_policy(queries, self.community, on_empty)

    def query_path(self) -> "Optional[ArrayQueryPath]":
        """The array-backed query engine of this index (``None`` sans numpy).

        Lazily creates and caches one
        :class:`~repro.index.traversal.ArrayQueryPath` over the indexed
        graph's vertices; subclasses that build level arrays natively (the
        CSR construction backend) pre-populate ``self._array_path`` instead.
        """
        from repro.graph.csr import HAS_NUMPY

        if not HAS_NUMPY:
            return None
        path = getattr(self, "_array_path", None)
        if path is None:
            from repro.index.traversal import ArrayQueryPath

            path = ArrayQueryPath(
                self._graph.upper_labels(), self._graph.lower_labels()
            )
            self._array_path = path
        return path

    def _invalidate_query_arrays(self) -> None:
        """Drop the array query path after the index structure changed.

        Called by :class:`~repro.index.maintenance.DynamicDegeneracyIndex`
        whenever an edge update patches the dict lists in place; the path is
        rebuilt lazily from the patched lists on the next batch query.
        """
        self._array_path = None

    @abc.abstractmethod
    def stats(self) -> IndexStats:
        """Return size / build-time statistics for reporting."""
