"""Shared interface and bookkeeping for the community-retrieval indexes."""

from __future__ import annotations

import abc
import contextlib
import gc
from dataclasses import dataclass, field
from typing import Dict, Iterator

from repro.graph.bipartite import BipartiteGraph, Vertex

__all__ = ["IndexStats", "CommunityIndex", "gc_paused"]


@contextlib.contextmanager
def gc_paused() -> Iterator[None]:
    """Pause cyclic garbage collection for the duration of a bulk build.

    Index construction allocates millions of long-lived acyclic objects
    (entry tuples, vertex handles, per-level dicts); letting the generational
    collector repeatedly scan them can more than double the build time on
    large graphs.  The caller's GC state is restored on exit.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


@dataclass
class IndexStats:
    """Size and build-time statistics reported by every index.

    ``entries`` counts the atomic stored items (per-vertex offsets for the
    bicore index, adjacency entries for the edge-level indexes); it is the
    quantity Figure 11 of the paper compares across indexes.
    """

    name: str
    entries: int = 0
    adjacency_lists: int = 0
    build_seconds: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        data: Dict[str, float] = {
            "entries": self.entries,
            "adjacency_lists": self.adjacency_lists,
            "build_seconds": self.build_seconds,
        }
        data.update(self.extra)
        return data


class CommunityIndex(abc.ABC):
    """Abstract base class of all (α,β)-community indexes.

    Every index is built once for a graph and then answers
    :meth:`community` queries: the connected component of a query vertex in
    the (α,β)-core, returned as a weighted edge subgraph.
    """

    def __init__(self, graph: BipartiteGraph) -> None:
        self._graph = graph

    @property
    def graph(self) -> BipartiteGraph:
        """The graph this index was built for."""
        return self._graph

    @abc.abstractmethod
    def community(self, query: Vertex, alpha: int, beta: int) -> BipartiteGraph:
        """Return ``C_{α,β}(query)``.

        Raises :class:`~repro.exceptions.EmptyCommunityError` when the query
        vertex is not contained in the (α,β)-core.
        """

    @abc.abstractmethod
    def stats(self) -> IndexStats:
        """Return size / build-time statistics for reporting."""
