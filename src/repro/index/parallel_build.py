"""Multicore sharding of the per-level index construction passes.

The τ = 1..δ levels of Algorithm 3 are embarrassingly parallel: each level
is a pure function of the frozen CSR arrays, so the per-τ offset sweeps and
entry filtering can run on worker processes while the parent keeps the only
steps that touch interned handles (dict assembly, ``ArrayQueryPath``
population) sequential and deterministic.

The split is chosen so parallelism cannot change results:

* workers compute only :class:`LevelPayload` values — plain ``numpy`` arrays
  (offset vectors and sorted :data:`~repro.index.csr_build.SideEntries`)
  produced by deterministic kernels;
* the parent consumes payloads in increasing τ order, running exactly the
  same assembly code as the sequential build.

The six CSR arrays are shipped once per worker through the pool initializer
(pickled buffers; a fork start method shares the parent pages outright), not
once per level.  ``_parallel_payloads`` and ``_sequential_payloads`` are
registered as a kernel/twin pair — ``n_jobs=1`` must stay element-wise
identical to any worker count.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.decomposition.csr_kernels import csr_offsets_fixed_primary
from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import Side
from repro.graph.csr import CSRBipartiteGraph
from repro.index.csr_build import SideEntries, edge_sources, level_side_entries

__all__ = [
    "LevelPayload",
    "check_n_jobs",
    "compute_level_payloads",
    "level_payload",
]

#: The CSR array attributes shipped to workers, in constructor order.
_CSR_ARRAY_FIELDS = (
    "u_indptr",
    "u_indices",
    "u_weights",
    "l_indptr",
    "l_indices",
    "l_weights",
)


@dataclass(frozen=True)
class LevelPayload:
    """Everything level τ contributes before handle-dependent assembly.

    ``alpha_upper``/``alpha_lower`` are the α-offset vectors at level τ
    (``sa`` in the paper's notation), ``beta_upper``/``beta_lower`` the
    β-offset vectors; the entry dicts are the filtered, sorted per-side edge
    arrays of each index half.  All fields are plain arrays (and picklable),
    so a payload crosses process boundaries unchanged.
    """

    tau: int
    alpha_upper: "np.ndarray"
    alpha_lower: "np.ndarray"
    beta_upper: "np.ndarray"
    beta_lower: "np.ndarray"
    alpha_entries: SideEntries
    beta_entries: SideEntries
    seconds: float


def check_n_jobs(n_jobs: int) -> int:
    """Validate a worker-count parameter (a positive int), returning it."""
    if isinstance(n_jobs, bool) or not isinstance(n_jobs, int) or n_jobs < 1:
        raise InvalidParameterError(
            f"n_jobs must be a positive integer, got {n_jobs!r}"
        )
    return n_jobs


def level_payload(
    csr: CSRBipartiteGraph,
    tau: int,
    src_upper: "np.ndarray",
    src_lower: "np.ndarray",
) -> LevelPayload:
    """Compute level τ's offset vectors and sorted entry arrays.

    Pure in the CSR arrays: every step (fixed-primary offset sweeps, member
    masks, entry filtering and the lexicographic entry sort) is deterministic,
    so the payload is identical no matter which process computes it.
    """
    started = time.perf_counter()
    sa_u, sa_l = csr_offsets_fixed_primary(csr, Side.UPPER, tau)
    sb_u, sb_l = csr_offsets_fixed_primary(csr, Side.LOWER, tau)
    member_upper = sa_u >= tau
    member_lower = sa_l >= tau
    alpha_entries = level_side_entries(
        csr,
        member_upper,
        member_lower,
        sa_u,
        sa_l,
        tau,
        strict=False,
        src_upper=src_upper,
        src_lower=src_lower,
    )
    beta_entries = level_side_entries(
        csr,
        member_upper,
        member_lower,
        sb_u,
        sb_l,
        tau,
        strict=True,
        src_upper=src_upper,
        src_lower=src_lower,
    )
    return LevelPayload(
        tau=tau,
        alpha_upper=sa_u,
        alpha_lower=sa_l,
        beta_upper=sb_u,
        beta_lower=sb_l,
        alpha_entries=alpha_entries,
        beta_entries=beta_entries,
        seconds=time.perf_counter() - started,
    )


# --------------------------------------------------------------------- #
# worker-side state
# --------------------------------------------------------------------- #
#: Per-worker frozen graph + precomputed edge sources, installed by the pool
#: initializer so the arrays ship once per worker instead of once per level.
_WORKER_STATE: Optional[Tuple[CSRBipartiteGraph, "np.ndarray", "np.ndarray"]] = None


def _init_worker(arrays: Tuple["np.ndarray", ...]) -> None:
    """Rebuild a label-free CSR view over the shipped arrays in this worker.

    Workers only ever run array kernels (``layer``/``num_upper``/
    ``num_lower``), so integer-range stand-in labels are enough — the parent
    keeps the real intern table and does all label-dependent assembly.
    """
    global _WORKER_STATE
    num_upper = int(arrays[0].shape[0]) - 1
    num_lower = int(arrays[3].shape[0]) - 1
    csr = CSRBipartiteGraph(
        "", list(range(num_upper)), list(range(num_lower)), *arrays
    )
    _WORKER_STATE = (csr, edge_sources(csr, Side.UPPER), edge_sources(csr, Side.LOWER))


def _worker_level(tau: int) -> LevelPayload:
    """Pool map target: compute one level against the worker's CSR view."""
    state = _WORKER_STATE
    if state is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("parallel build worker used before initialisation")
    csr, src_upper, src_lower = state
    return level_payload(csr, tau, src_upper, src_lower)


# --------------------------------------------------------------------- #
# the kernel/twin pair
# --------------------------------------------------------------------- #
def _sequential_payloads(csr: CSRBipartiteGraph, delta: int) -> List[LevelPayload]:
    """In-process level computation, one τ at a time.

    Contract: one LevelPayload per level tau = 1..delta, in increasing tau
    order, each holding that level's deterministic offset vectors and sorted
    side-entry arrays.
    """
    src_upper = edge_sources(csr, Side.UPPER)
    src_lower = edge_sources(csr, Side.LOWER)
    return [level_payload(csr, tau, src_upper, src_lower) for tau in range(1, delta + 1)]


def _parallel_payloads(
    csr: CSRBipartiteGraph, delta: int, jobs: int
) -> List[LevelPayload]:
    """Level computation sharded across a process pool.

    Contract: one LevelPayload per level tau = 1..delta, in increasing tau
    order, each holding that level's deterministic offset vectors and sorted
    side-entry arrays.
    """
    arrays = tuple(getattr(csr, field) for field in _CSR_ARRAY_FIELDS)
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    context = multiprocessing.get_context(method)
    with context.Pool(
        processes=jobs, initializer=_init_worker, initargs=(arrays,)
    ) as pool:
        # chunksize=1: levels get cheaper as tau grows, so fine-grained
        # dispatch balances the skewed per-level cost across workers.
        return pool.map(_worker_level, range(1, delta + 1), chunksize=1)


def compute_level_payloads(
    csr: CSRBipartiteGraph, delta: int, n_jobs: int = 1
) -> Tuple[List[LevelPayload], Dict[str, float]]:
    """All level payloads of an index build, plus build observability metrics.

    ``n_jobs`` caps at ``delta`` (a worker per level is the finest useful
    grain); 0 or 1 effective workers run sequentially in-process.  The
    returned metrics surface through ``IndexStats.extra``:
    ``build_jobs`` (effective worker count), ``build_shipped_bytes``
    (CSR array bytes pickled to each worker, 0 for the in-process path),
    and ``build_level_seconds_total``/``build_level_seconds_max`` (summed and
    slowest per-level compute time, measured inside the workers).
    """
    jobs = min(check_n_jobs(n_jobs), max(delta, 1))
    if jobs > 1:
        payloads = _parallel_payloads(csr, delta, jobs)
        shipped = float(
            sum(getattr(csr, field).nbytes for field in _CSR_ARRAY_FIELDS)
        )
    else:
        payloads = _sequential_payloads(csr, delta)
        shipped = 0.0
    seconds = [payload.seconds for payload in payloads]
    metrics = {
        "build_jobs": float(jobs),
        "build_shipped_bytes": shipped,
        "build_level_seconds_total": float(sum(seconds)),
        "build_level_seconds_max": float(max(seconds, default=0.0)),
    }
    return payloads, metrics
