"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Raised for structural problems in a bipartite graph."""


class VertexNotFoundError(GraphError, KeyError):
    """Raised when a vertex referenced by an operation does not exist."""

    def __init__(self, side: object, label: object) -> None:
        super().__init__(f"vertex {label!r} does not exist on the {side} side")
        self.side = side
        self.label = label


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an edge referenced by an operation does not exist."""

    def __init__(self, upper: object, lower: object) -> None:
        super().__init__(f"edge ({upper!r}, {lower!r}) does not exist")
        self.upper = upper
        self.lower = lower


class InvalidParameterError(ReproError, ValueError):
    """Raised when a query or construction parameter is invalid."""


class EmptyCommunityError(ReproError):
    """Raised when a query vertex is not contained in the requested core.

    The paper defines the significant (alpha, beta)-community only for query
    vertices that belong to the (alpha, beta)-core; this error signals that the
    query has no answer for the supplied parameters.
    """

    def __init__(self, query: object, alpha: int, beta: int) -> None:
        super().__init__(
            f"query vertex {query!r} is not contained in the "
            f"({alpha}, {beta})-core; no community exists"
        )
        self.query = query
        self.alpha = alpha
        self.beta = beta


class IndexConsistencyError(ReproError):
    """Raised when an index is used against a graph it does not describe,
    or when a persisted index (pickle or snapshot) cannot be read back."""


class ServingError(ReproError):
    """Raised when the multi-process serving layer fails.

    Covers worker startup failures, worker crashes mid-batch and protocol
    violations; query-level failures (empty communities, bad parameters) are
    re-raised in the driving process as their original exception types.
    """


class OverloadedError(ServingError):
    """Raised when the serving front end rejects a query under load.

    The network front end admission-controls incoming streams with a bounded
    pending-request budget; once the budget is exhausted new queries are
    rejected immediately with this error instead of queueing without bound.
    Clients should treat it as a retryable backpressure signal.
    """


class DatasetError(ReproError):
    """Raised when a dataset cannot be generated or parsed."""
