"""``SCS-Peel`` (Algorithm 4): peel the lightest edges until the query fails.

Starting from the (α,β)-community ``C_{α,β}(q)`` — which already satisfies the
connectivity and cohesiveness constraints — the algorithm repeatedly removes
every edge carrying the current minimum weight and cascades the removal of
vertices that fall below their degree threshold.  The moment the query vertex
itself loses its required degree, the edges removed in the current round are
restored and the connected component of the query vertex in that restored
graph is the answer ``R``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from repro.graph.bipartite import BipartiteGraph, Side, Vertex
from repro.graph.views import connected_component
from repro.utils.validation import check_query_vertex, check_thresholds

__all__ = ["scs_peel"]


def _threshold(vertex: Vertex, alpha: int, beta: int) -> int:
    return alpha if vertex.side is Side.UPPER else beta


def uniform_weight_answer(
    community: BipartiteGraph, query: Vertex, alpha: int, beta: int
) -> BipartiteGraph:
    """The shared single-distinct-weight exit of every SCS algorithm.

    With at most one distinct edge weight the community itself is the answer,
    but the exit must behave exactly like the general paths: the query vertex
    is validated against the community and the result carries the canonical
    ``R(α,β)[q]`` name.
    """
    check_query_vertex(community, query)
    return community.copy(name=f"R({alpha},{beta})[{query.label!r}]")


def scs_peel(
    community: BipartiteGraph,
    query: Vertex,
    alpha: int,
    beta: int,
) -> BipartiteGraph:
    """Extract the significant (α,β)-community from ``community``.

    ``community`` must be the (α,β)-community of ``query`` (or, more generally,
    a connected subgraph containing ``query`` in which every vertex meets its
    degree threshold); the function does not modify it.
    """
    check_thresholds(alpha, beta)
    # Special case called out by the paper: with a single distinct weight the
    # community itself is the answer.
    weights = set(community.edge_weights())
    if len(weights) <= 1:
        return uniform_weight_answer(community, query, alpha, beta)

    work = community.copy()
    ordered: List[Tuple[object, object, float]] = sorted(work.edges(), key=lambda e: e[2])
    query_threshold = _threshold(query, alpha, beta)
    index = 0
    total = len(ordered)

    while index < total:
        # Skip edges already removed by an earlier cascade.
        while index < total and not work.has_edge(ordered[index][0], ordered[index][1]):
            index += 1
        if index >= total:
            break
        current_weight = ordered[index][2]
        removed_this_round: List[Tuple[object, object, float]] = []
        cascade: Deque[Vertex] = deque()

        # Remove every edge carrying the round's minimum weight.
        while index < total and ordered[index][2] == current_weight:
            u, v, w = ordered[index]
            index += 1
            if not work.has_edge(u, v):
                continue
            work.remove_edge(u, v)
            removed_this_round.append((u, v, w))
            for vertex in (Vertex(Side.UPPER, u), Vertex(Side.LOWER, v)):
                if work.degree_of(vertex) < _threshold(vertex, alpha, beta):
                    cascade.append(vertex)

        # Cascade: a vertex below its threshold loses all remaining edges.
        while cascade:
            vertex = cascade.popleft()
            if work.degree_of(vertex) >= _threshold(vertex, alpha, beta):
                continue
            other = vertex.side.other
            for nbr_label in list(work.neighbors(vertex.side, vertex.label)):
                if vertex.side is Side.UPPER:
                    u_label, v_label = vertex.label, nbr_label
                else:
                    u_label, v_label = nbr_label, vertex.label
                weight = work.remove_edge(u_label, v_label)
                removed_this_round.append((u_label, v_label, weight))
                neighbour = Vertex(other, nbr_label)
                if work.degree_of(neighbour) < _threshold(neighbour, alpha, beta):
                    cascade.append(neighbour)

        if work.degree_of(query) < query_threshold:
            # The query vertex no longer survives: the graph as it stood at the
            # start of this round is the last valid one.  Restore the edges
            # removed in this round and return the component of the query.
            for u, v, w in removed_this_round:
                work.add_edge(u, v, w)
            result = connected_component(work, query)
            result.name = f"R({alpha},{beta})[{query.label!r}]"
            return result

    # Unreachable for a well-formed input (the query vertex must eventually
    # fail), but kept as a safe fall-back: the community itself is valid.
    return community.copy()
