"""``SCS-Binary``: binary search over the distinct edge weights.

The remark at the end of Section IV of the paper discusses this alternative:
for a candidate weight threshold ``w`` take the subgraph of ``C_{α,β}(q)``
restricted to edges of weight >= ``w``, peel it, and test whether the query
vertex survives.  The predicate is monotone in ``w`` (smaller thresholds keep
more edges), so a binary search over the sorted distinct weights finds the
largest feasible threshold; the answer is the connected component of the query
vertex in the peeled subgraph at that threshold.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.decomposition.abcore import peel_to_core
from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph, Side, Vertex
from repro.graph.views import connected_component, induced_subgraph, weight_threshold_subgraph
from repro.search.peel import uniform_weight_answer
from repro.utils.validation import check_thresholds

__all__ = ["scs_binary"]


def _peel_subgraph(
    subgraph: BipartiteGraph, query: Vertex, alpha: int, beta: int
) -> Optional[BipartiteGraph]:
    """Peel ``subgraph`` to its (α,β)-core; return the query's component or None."""
    degrees: Dict[Vertex, int] = {v: subgraph.degree_of(v) for v in subgraph.vertices()}
    neighbors = {
        v: tuple(Vertex(v.side.other, label) for label in subgraph.neighbors(v.side, v.label))
        for v in subgraph.vertices()
    }
    survivors = peel_to_core(degrees, neighbors, alpha, beta)
    if query not in survivors:
        return None
    cohesive = induced_subgraph(subgraph, survivors)
    return connected_component(cohesive, query)


def scs_binary(
    community: BipartiteGraph,
    query: Vertex,
    alpha: int,
    beta: int,
) -> BipartiteGraph:
    """Extract the significant (α,β)-community via binary search on weights."""
    check_thresholds(alpha, beta)
    weights: List[float] = sorted(set(community.edge_weights()))
    if len(weights) <= 1:
        return uniform_weight_answer(community, query, alpha, beta)

    # Invariant: feasible at ``low`` (the whole community survives at the
    # minimum weight), unknown above.  Find the largest feasible threshold.
    low, high = 0, len(weights) - 1
    best: Optional[Tuple[float, BipartiteGraph]] = None
    while low <= high:
        mid = (low + high) // 2
        threshold = weights[mid]
        candidate = _peel_subgraph(
            weight_threshold_subgraph(community, threshold), query, alpha, beta
        )
        if candidate is not None:
            best = (threshold, candidate)
            low = mid + 1
        else:
            high = mid - 1

    if best is None:
        raise InvalidParameterError(
            f"the supplied community is not a valid ({alpha},{beta})-community of {query!r}"
        )
    result = best[1]
    result.name = f"R({alpha},{beta})[{query.label!r}]"
    return result
