"""Result container returned by the significant-community search algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

from repro.graph.bipartite import BipartiteGraph, Side, Vertex

__all__ = ["SearchResult"]


@dataclass
class SearchResult:
    """The significant (α,β)-community of one query, plus provenance.

    Attributes
    ----------
    graph:
        The community ``R`` itself as a weighted bipartite subgraph.
    query, alpha, beta:
        The query that produced it.
    method:
        Which algorithm computed the result (``"peel"``, ``"expand"``,
        ``"binary"`` or ``"baseline"``).
    search_space_edges:
        Number of edges of the subgraph the algorithm actually searched
        (``C_{α,β}(q)`` for the indexed algorithms, the full connected
        component for the baseline); useful for reporting the benefit of the
        two-step framework.
    """

    graph: BipartiteGraph
    query: Vertex
    alpha: int
    beta: int
    method: str = ""
    search_space_edges: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def significance(self) -> float:
        """``f(R)``: the minimum edge weight of the community."""
        return self.graph.significance()

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def upper_labels(self) -> List[Hashable]:
        """Labels of the community's upper-layer vertices (e.g. users)."""
        return sorted(self.graph.upper_labels(), key=repr)

    def lower_labels(self) -> List[Hashable]:
        """Labels of the community's lower-layer vertices (e.g. items)."""
        return sorted(self.graph.lower_labels(), key=repr)

    def edges(self) -> List[Tuple[Hashable, Hashable, float]]:
        return sorted(self.graph.edges(), key=repr)

    def contains(self, vertex: Vertex) -> bool:
        return self.graph.has_vertex(vertex.side, vertex.label)

    def describe(self) -> str:
        """One-line human readable summary."""
        return (
            f"significant ({self.alpha},{self.beta})-community of {self.query!r}: "
            f"{self.graph.num_upper} upper x {self.graph.num_lower} lower vertices, "
            f"{self.graph.num_edges} edges, significance {self.significance:g}"
        )
