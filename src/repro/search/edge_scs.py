"""Significant search over parallel edge lists — the pure-python twins.

The array-native step 2 (ISSUE: retire the thaw-and-peel hot path) runs the
SCS algorithms directly over the wire form of a retrieved community: three
parallel sequences ``(src upper ids, dst lower ids, weights)`` as produced by
:func:`repro.index.traversal.bfs_over_arrays` with ``assemble=False``.  The
vectorised kernels live in :mod:`repro.decomposition.csr_kernels`; this module
holds their pure-python twins, written against plain lists and sets so the
no-numpy matrix can exercise the exact same algorithms (and so the kernels
have a numpy-free oracle in addition to the dict-backed ``scs_*`` functions).

All three methods compute the same unique answer (Lemma 1 of the paper):

* ``"peel"``   — Algorithm 4: remove the current minimum-weight edges round
  by round, cascade vertices below their threshold, restore the last round
  when the query dies and return its connected component.
* ``"expand"`` — Algorithm 5: insert edges heaviest-first into a union-find
  over the interned ids, with the Lemma 7 / saturation pruning rules and the
  geometric validation rule (``epsilon``).
* ``"binary"`` — binary search over the distinct weights; each probe keeps
  the edges at or above the threshold and peels them to the (α,β)-core.

Every function returns the answer as a sorted list of *edge positions* into
the input sequences, so callers can slice their arrays (or lists) without this
module ever touching labels or graph objects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import InvalidParameterError
from repro.utils.validation import check_thresholds

__all__ = ["significant_edge_indices", "SCS_EDGE_METHODS"]

SCS_EDGE_METHODS = ("peel", "expand", "binary")


# --------------------------------------------------------------------------- #
# shared primitives over compacted edge lists
# --------------------------------------------------------------------------- #
def _compact(src: Sequence[int], dst: Sequence[int]) -> Tuple[List[int], List[int], int, int]:
    """Intern the two endpoint id spaces into dense ``0..n-1`` local ids."""
    upper_ids: Dict[int, int] = {}
    lower_ids: Dict[int, int] = {}
    us: List[int] = []
    ls: List[int] = []
    for u in src:
        us.append(upper_ids.setdefault(u, len(upper_ids)))
    for v in dst:
        ls.append(lower_ids.setdefault(v, len(lower_ids)))
    return us, ls, len(upper_ids), len(lower_ids)


def _degrees(
    us: Sequence[int], ls: Sequence[int], num_upper: int, num_lower: int, alive: Sequence[bool]
) -> Tuple[List[int], List[int]]:
    du = [0] * num_upper
    dl = [0] * num_lower
    for e, keep in enumerate(alive):
        if keep:
            du[us[e]] += 1
            dl[ls[e]] += 1
    return du, dl


def _core_fixpoint(
    us: Sequence[int],
    ls: Sequence[int],
    num_upper: int,
    num_lower: int,
    alive: List[bool],
    alpha: int,
    beta: int,
) -> Tuple[List[bool], List[int], List[int]]:
    """Peel ``alive`` to its (α,β)-core: kill below-threshold vertices' edges
    until every remaining vertex meets its threshold (the cascade of
    Algorithm 4 run to fixpoint)."""
    while True:
        du, dl = _degrees(us, ls, num_upper, num_lower, alive)
        bad_u = {u for u, d in enumerate(du) if 0 < d < alpha}
        bad_l = {v for v, d in enumerate(dl) if 0 < d < beta}
        if not bad_u and not bad_l:
            return alive, du, dl
        alive = [
            keep and us[e] not in bad_u and ls[e] not in bad_l
            for e, keep in enumerate(alive)
        ]


def _component_indices(
    us: Sequence[int],
    ls: Sequence[int],
    alive: Sequence[bool],
    query_in_upper: bool,
    query: int,
) -> List[int]:
    """Edge positions of the query's connected component inside ``alive``."""
    in_u: set = set()
    in_l: set = set()
    (in_u if query_in_upper else in_l).add(query)
    changed = True
    while changed:
        changed = False
        for e, keep in enumerate(alive):
            if not keep:
                continue
            u, v = us[e], ls[e]
            if (u in in_u) != (v in in_l):
                in_u.add(u)
                in_l.add(v)
                changed = True
    return [
        e for e, keep in enumerate(alive) if keep and us[e] in in_u and ls[e] in in_l
    ]


# --------------------------------------------------------------------------- #
# peel (Algorithm 4)
# --------------------------------------------------------------------------- #
def _peel_indices(
    us: Sequence[int],
    ls: Sequence[int],
    weight: Sequence[float],
    num_upper: int,
    num_lower: int,
    alive: List[bool],
    query_in_upper: bool,
    query: int,
    alpha: int,
    beta: int,
) -> List[int]:
    """Peel the ``alive`` subset; mirrors ``scs_peel`` round for round.

    Contract: remove minimum-weight edges round by round, cascade the core, and return the query's component of the last surviving round.
    """
    live = [e for e, keep in enumerate(alive) if keep]
    if len({weight[e] for e in live}) <= 1:
        # Single distinct weight: the (sub)community itself is the answer.
        return live
    order = sorted(live, key=lambda e: weight[e])
    query_threshold = alpha if query_in_upper else beta
    du, dl = _degrees(us, ls, num_upper, num_lower, alive)
    pos, total = 0, len(order)
    while pos < total:
        while pos < total and not alive[order[pos]]:
            pos += 1
        if pos >= total:
            break
        current_weight = weight[order[pos]]
        previous = list(alive)
        while pos < total and weight[order[pos]] == current_weight:
            e = order[pos]
            pos += 1
            if alive[e]:
                alive[e] = False
                du[us[e]] -= 1
                dl[ls[e]] -= 1
        # Cascade: a vertex below its threshold loses all remaining edges.
        while True:
            bad_u = {u for u, d in enumerate(du) if 0 < d < alpha}
            bad_l = {v for v, d in enumerate(dl) if 0 < d < beta}
            if not bad_u and not bad_l:
                break
            for e, keep in enumerate(alive):
                if keep and (us[e] in bad_u or ls[e] in bad_l):
                    alive[e] = False
                    du[us[e]] -= 1
                    dl[ls[e]] -= 1
        query_degree = du[query] if query_in_upper else dl[query]
        if query_degree < query_threshold:
            # The graph as it stood at the start of this round is the last
            # valid one: restore the round and return the query's component.
            return _component_indices(us, ls, previous, query_in_upper, query)
    # Unreachable for a well-formed input (the query must eventually fail),
    # kept as the same safe fall-back the dict algorithm uses.
    return live


# --------------------------------------------------------------------------- #
# binary search over distinct weights
# --------------------------------------------------------------------------- #
def _binary_indices(
    us: Sequence[int],
    ls: Sequence[int],
    weight: Sequence[float],
    num_upper: int,
    num_lower: int,
    query_in_upper: bool,
    query: int,
    alpha: int,
    beta: int,
) -> List[int]:
    """Binary search over the distinct weights; mirrors ``scs_binary``.

    Contract: query component of the core at the largest weight threshold keeping the query alive; error if none does.
    """
    distinct = sorted(set(weight))
    low, high = 0, len(distinct) - 1
    best: Optional[List[bool]] = None
    while low <= high:
        mid = (low + high) // 2
        threshold = distinct[mid]
        alive, du, dl = _core_fixpoint(
            us, ls, num_upper, num_lower, [w >= threshold for w in weight], alpha, beta
        )
        survives = (du[query] if query_in_upper else dl[query]) > 0
        if survives:
            best = alive
            low = mid + 1
        else:
            high = mid - 1
    if best is None:
        raise InvalidParameterError(
            f"the supplied edges are not a valid ({alpha},{beta})-community "
            "of the query vertex"
        )
    return _component_indices(us, ls, best, query_in_upper, query)


# --------------------------------------------------------------------------- #
# expand (Algorithm 5): union-find over the interned ids
# --------------------------------------------------------------------------- #
def _expand_indices(
    us: Sequence[int],
    ls: Sequence[int],
    weight: Sequence[float],
    num_upper: int,
    num_lower: int,
    query_in_upper: bool,
    query: int,
    alpha: int,
    beta: int,
    epsilon: float,
) -> List[int]:
    """Heaviest-first expansion; mirrors ``expand_over_pool``.

    Contract: heaviest-first expansion with epsilon-geometric validation; the first component passing validation is the answer.
    """
    order = sorted(range(len(weight)), key=lambda e: -weight[e])
    total = len(order)
    n = num_upper + num_lower
    query_vertex = query if query_in_upper else num_upper + query
    query_threshold = alpha if query_in_upper else beta

    parent = list(range(n))
    size = [1] * n
    degree = [0] * n
    comp_edges = [0] * n
    comp_upper = [1 if v < num_upper else 0 for v in range(n)]
    comp_lower = [0 if v < num_upper else 1 for v in range(n)]
    comp_usat = [0] * n
    comp_lsat = [0] * n

    def find(v: int) -> int:
        root = v
        while parent[root] != root:
            root = parent[root]
        while parent[v] != root:
            parent[v], v = root, parent[v]
        return root

    def add_edge(e: int) -> None:
        a, b = us[e], num_upper + ls[e]
        ra, rb = find(a), find(b)
        if ra == rb:
            comp_edges[ra] += 1
        else:
            if size[ra] < size[rb]:
                ra, rb = rb, ra
            parent[rb] = ra
            size[ra] += size[rb]
            comp_edges[ra] += comp_edges[rb] + 1
            comp_upper[ra] += comp_upper[rb]
            comp_lower[ra] += comp_lower[rb]
            comp_usat[ra] += comp_usat[rb]
            comp_lsat[ra] += comp_lsat[rb]
        for v in (a, b):
            degree[v] += 1
            threshold = alpha if v < num_upper else beta
            if degree[v] == threshold:
                root = find(v)
                if v < num_upper:
                    comp_usat[root] += 1
                else:
                    comp_lsat[root] += 1

    def validate(inserted: int) -> Optional[List[int]]:
        """Peel the query's component of the grown graph; None if q dies."""
        root = find(query_vertex)
        candidate = [False] * total
        for e in order[:inserted]:
            if find(us[e]) == root:
                candidate[e] = True
        core, du, dl = _core_fixpoint(
            us, ls, num_upper, num_lower, candidate, alpha, beta
        )
        if (du[query] if query_in_upper else dl[query]) == 0:
            return None
        component = _component_indices(us, ls, core, query_in_upper, query)
        mask = [False] * total
        for e in component:
            mask[e] = True
        return _peel_indices(
            us, ls, weight, num_upper, num_lower, mask,
            query_in_upper, query, alpha, beta,
        )

    previous_checked_size = 0
    pos = 0
    while pos < total:
        batch_weight = weight[order[pos]]
        before = comp_edges[find(query_vertex)] if degree[query_vertex] else -1
        while pos < total and weight[order[pos]] == batch_weight:
            add_edge(order[pos])
            pos += 1
        if not degree[query_vertex]:
            continue
        root = find(query_vertex)
        component_edges = comp_edges[root]
        if component_edges == before:
            continue  # C* unchanged in this round.
        # Lemma 7 / saturation pruning, exactly as ``expand_over_pool``.
        if alpha * beta - alpha - beta > (
            component_edges - comp_upper[root] - comp_lower[root]
        ):
            continue
        if comp_usat[root] < beta or comp_lsat[root] < alpha:
            continue
        if degree[query_vertex] < query_threshold:
            continue
        if previous_checked_size and component_edges < previous_checked_size * epsilon:
            continue
        previous_checked_size = component_edges
        answer = validate(pos)
        if answer is not None:
            return answer
    if degree[query_vertex]:
        answer = validate(total)
        if answer is not None:
            return answer
    raise InvalidParameterError(
        f"the supplied edges contain no ({alpha},{beta})-community "
        "of the query vertex"
    )


# --------------------------------------------------------------------------- #
# public dispatcher
# --------------------------------------------------------------------------- #
def significant_edge_indices(
    src: Sequence[int],
    dst: Sequence[int],
    weight: Sequence[float],
    query_in_upper: bool,
    query_id: int,
    alpha: int,
    beta: int,
    method: str = "peel",
    epsilon: float = 2.0,
) -> List[int]:
    """Extract ``R(α,β)[q]`` from community edge lists; return edge positions.

    ``src`` / ``dst`` / ``weight`` are the parallel edge sequences of one
    retrieved (α,β)-community (ids of the two layers live in independent
    spaces, as on the wire); ``query_id`` names the query vertex in the space
    selected by ``query_in_upper``.  The result is the ascending list of
    positions whose edges form the significant community — identical, edge
    for edge, to what the dict-backed ``scs_*`` oracle computes on the
    assembled graph.

    Contract: ascending positions of the query's significant (alpha,beta)-community edges, identical to the dict-backed scs oracle.
    """
    check_thresholds(alpha, beta)
    if method not in SCS_EDGE_METHODS:
        raise InvalidParameterError(
            f"unknown edge-search method {method!r}; expected one of {SCS_EDGE_METHODS}"
        )
    if method == "expand" and epsilon <= 1.0:
        raise InvalidParameterError("epsilon must be larger than 1")
    us, ls, num_upper, num_lower = _compact(src, dst)
    if query_in_upper:
        members = {u for u in src}
    else:
        members = {v for v in dst}
    if query_id not in members:
        raise InvalidParameterError(
            f"query vertex {query_id!r} is not in the supplied community edges"
        )
    # Re-intern the query into the compacted space.
    if query_in_upper:
        query = us[list(src).index(query_id)]
    else:
        query = ls[list(dst).index(query_id)]
    if len(set(weight)) <= 1:
        # Single distinct weight: the community itself is the answer (the
        # same short-circuit every dict algorithm takes).
        return list(range(len(us)))
    if method == "peel":
        return _peel_indices(
            us, ls, weight, num_upper, num_lower, [True] * len(us),
            query_in_upper, query, alpha, beta,
        )
    if method == "binary":
        return _binary_indices(
            us, ls, weight, num_upper, num_lower,
            query_in_upper, query, alpha, beta,
        )
    return _expand_indices(
        us, ls, weight, num_upper, num_lower,
        query_in_upper, query, alpha, beta, epsilon,
    )
