"""``SCS-Baseline``: expansion without the two-step framework.

The baseline of the paper's evaluation ignores the (α,β)-community and expands
edges (heaviest first) from the *entire connected component* of the query
vertex in the original graph.  It produces exactly the same answer as the
indexed algorithms but has to consider a much larger search space, which is
what Figure 12 measures.
"""

from __future__ import annotations

from repro.exceptions import EmptyCommunityError, InvalidParameterError
from repro.graph.bipartite import BipartiteGraph, Vertex
from repro.graph.views import connected_component
from repro.search.expand import DEFAULT_EPSILON, expand_over_pool
from repro.utils.validation import check_query_vertex, check_thresholds

__all__ = ["scs_baseline"]


def scs_baseline(
    graph: BipartiteGraph,
    query: Vertex,
    alpha: int,
    beta: int,
    epsilon: float = DEFAULT_EPSILON,
) -> BipartiteGraph:
    """Extract the significant (α,β)-community directly from the whole graph."""
    check_thresholds(alpha, beta)
    check_query_vertex(graph, query)
    pool = connected_component(graph, query)
    try:
        return expand_over_pool(pool, query, alpha, beta, epsilon=epsilon)
    except InvalidParameterError as exc:
        # The pool holds no valid community: the query vertex is simply not in
        # the (α,β)-core.
        raise EmptyCommunityError(query, alpha, beta) from exc
