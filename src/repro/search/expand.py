"""``SCS-Expand`` (Algorithm 5): grow the answer from the heaviest edges.

Edges of the search space are inserted in non-increasing weight order into an
initially empty graph ``G*`` whose connected components are maintained with a
union-find structure.  Whenever the component ``C*`` containing the query
vertex changes, cheap necessary conditions (Lemmas 7 and 8 of the paper)
decide whether the answer could already be inside ``C*``; an expensive
validation (peeling a copy of ``C*``) is only run when the component has grown
by at least a factor ``epsilon`` since its last validation (the paper argues
``epsilon = 2`` minimises total validation cost).  The first validation in
which the query vertex survives yields the answer via :func:`scs_peel`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.decomposition.abcore import peel_to_core
from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph, Side, Vertex
from repro.graph.views import connected_component, induced_subgraph
from repro.search.peel import scs_peel, uniform_weight_answer
from repro.utils.unionfind import ComponentTracker
from repro.utils.validation import check_thresholds

__all__ = ["scs_expand", "expand_over_pool"]

DEFAULT_EPSILON = 2.0


def _lemma7_holds(alpha: int, beta: int, edges: int, uppers: int, lowers: int) -> bool:
    """Necessary condition of Lemma 7: αβ − α − β ≤ |E(C*)| − |U(C*)| − |L(C*)|."""
    return alpha * beta - alpha - beta <= edges - uppers - lowers


def _validate_component(
    pool: BipartiteGraph,
    members: Set[Vertex],
    query: Vertex,
    alpha: int,
    beta: int,
) -> Optional[BipartiteGraph]:
    """Peel the component subgraph; return the answer if the query survives."""
    candidate = induced_subgraph(pool, members)
    degrees: Dict[Vertex, int] = {v: candidate.degree_of(v) for v in candidate.vertices()}
    neighbors = {
        v: tuple(Vertex(v.side.other, label) for label in candidate.neighbors(v.side, v.label))
        for v in candidate.vertices()
    }
    survivors = peel_to_core(degrees, neighbors, alpha, beta)
    if query not in survivors:
        return None
    cohesive = induced_subgraph(candidate, survivors)
    community = connected_component(cohesive, query)
    return scs_peel(community, query, alpha, beta)


def expand_over_pool(
    pool: BipartiteGraph,
    query: Vertex,
    alpha: int,
    beta: int,
    epsilon: float = DEFAULT_EPSILON,
) -> BipartiteGraph:
    """Run the expansion search over an arbitrary edge pool containing ``R``.

    ``pool`` must contain the significant (α,β)-community of ``query``
    (``C_{α,β}(q)`` for the indexed variant, the whole connected component of
    the query vertex for the baseline).  Exposed separately so that
    ``SCS-Baseline`` can reuse the exact same expansion machinery.
    """
    check_thresholds(alpha, beta)
    if epsilon <= 1.0:
        raise InvalidParameterError("epsilon must be larger than 1")

    ordered: List[Tuple[Hashable, Hashable, float]] = sorted(
        pool.edges(), key=lambda edge: -edge[2]
    )
    tracker = ComponentTracker(alpha, beta)
    grown = BipartiteGraph(name="G*")
    query_threshold = alpha if query.side is Side.UPPER else beta
    previous_checked_size = 0

    index = 0
    total = len(ordered)
    while index < total:
        batch_weight = ordered[index][2]
        before_edges = tracker.component_edges(query) if tracker.contains(query) else -1
        while index < total and ordered[index][2] == batch_weight:
            u, v, w = ordered[index]
            index += 1
            grown.add_edge(u, v, w)
            tracker.add_edge(Vertex(Side.UPPER, u), Vertex(Side.LOWER, v))

        if not tracker.contains(query):
            continue
        component_edges = tracker.component_edges(query)
        if component_edges == before_edges:
            continue  # C* unchanged in this round.

        # Lemma 7 / Lemma 8 style pruning: skip components that cannot yet
        # contain a valid community.
        uppers = tracker.component_upper(query)
        lowers = tracker.component_lower(query)
        if not _lemma7_holds(alpha, beta, component_edges, uppers, lowers):
            continue
        if tracker.saturated_upper(query) < beta or tracker.saturated_lower(query) < alpha:
            continue
        if tracker.degree(query) < query_threshold:
            continue

        # Geometric growth rule: validate only when the component has grown by
        # a factor epsilon since the last validation (or has never been checked).
        if previous_checked_size and component_edges < previous_checked_size * epsilon:
            continue
        previous_checked_size = component_edges

        answer = _validate_component(
            grown, tracker.component_members(query), query, alpha, beta
        )
        if answer is not None:
            answer.name = f"R({alpha},{beta})[{query.label!r}]"
            return answer

    # All edges were inserted but the geometric growth rule may have skipped
    # the final validation; run it unconditionally now.
    if tracker.contains(query):
        answer = _validate_component(
            grown, tracker.component_members(query), query, alpha, beta
        )
        if answer is not None:
            answer.name = f"R({alpha},{beta})[{query.label!r}]"
            return answer
    # No valid community exists inside the pool.
    raise InvalidParameterError(
        f"the supplied edge pool contains no ({alpha},{beta})-community of {query!r}"
    )


def scs_expand(
    community: BipartiteGraph,
    query: Vertex,
    alpha: int,
    beta: int,
    epsilon: float = DEFAULT_EPSILON,
) -> BipartiteGraph:
    """Extract the significant (α,β)-community by expansion (Algorithm 5)."""
    check_thresholds(alpha, beta)
    if epsilon <= 1.0:
        raise InvalidParameterError("epsilon must be larger than 1")
    weights = set(community.edge_weights())
    if len(weights) <= 1:
        return uniform_weight_answer(community, query, alpha, beta)
    return expand_over_pool(community, query, alpha, beta, epsilon=epsilon)
