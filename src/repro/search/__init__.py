"""Significant (α,β)-community search algorithms (Section IV of the paper).

All algorithms take the (α,β)-community ``C_{α,β}(q)`` produced by an index
(or, for the baseline, the raw connected component of the query vertex) and
extract the significant (α,β)-community ``R``:

* :func:`~repro.search.peel.scs_peel` — Algorithm 4, iteratively removes the
  lightest edges.
* :func:`~repro.search.expand.scs_expand` — Algorithm 5, grows a subgraph from
  the heaviest edges with union-find and pruning rules.
* :func:`~repro.search.binary.scs_binary` — binary search over edge weights.
* :func:`~repro.search.baseline.scs_baseline` — index-free expansion over the
  whole connected component (the paper's ``SCS-Baseline``).

The dict-backed functions above are the *oracles*: each also has an
array-native twin operating directly on the parallel edge arrays a frozen
index retrieves, without materialising a graph object —
:func:`repro.search.edge_scs.significant_edge_indices` (pure python, used on
the no-numpy matrix) and
:func:`repro.decomposition.csr_kernels.csr_significant_edges` (vectorised).
The agreement suite asserts all three produce element-wise identical answers;
:meth:`repro.api.CommunitySearcher.significant_community` and the batch /
serving entry points route through the array twins whenever an array query
path is available.

``method="auto"`` resolves with :func:`resolve_scs_method`: peeling when the
thresholds are large relative to the graph's degeneracy δ (small search
space), expansion otherwise — every entry point (sequential, batch, serving
worker) shares this one rule so resolved methods never diverge between paths.
"""

from repro.search.baseline import scs_baseline
from repro.search.binary import scs_binary
from repro.search.expand import scs_expand
from repro.search.peel import scs_peel
from repro.search.result import SearchResult

__all__ = [
    "SearchResult",
    "resolve_scs_method",
    "scs_peel",
    "scs_expand",
    "scs_binary",
    "scs_baseline",
]


def resolve_scs_method(method: str, alpha: int, beta: int, delta: int) -> str:
    """Resolve ``"auto"`` to a concrete step-2 algorithm (paper Section VI).

    Expansion wins when the thresholds are small relative to the degeneracy δ
    (large search space, small answer); peeling wins for large thresholds.
    Concrete method names pass through unchanged.
    """
    if method != "auto":
        return method
    threshold_ratio = min(alpha, beta) / max(1, delta)
    return "peel" if threshold_ratio >= 0.5 else "expand"
