"""Significant (α,β)-community search algorithms (Section IV of the paper).

All algorithms take the (α,β)-community ``C_{α,β}(q)`` produced by an index
(or, for the baseline, the raw connected component of the query vertex) and
extract the significant (α,β)-community ``R``:

* :func:`~repro.search.peel.scs_peel` — Algorithm 4, iteratively removes the
  lightest edges.
* :func:`~repro.search.expand.scs_expand` — Algorithm 5, grows a subgraph from
  the heaviest edges with union-find and pruning rules.
* :func:`~repro.search.binary.scs_binary` — binary search over edge weights.
* :func:`~repro.search.baseline.scs_baseline` — index-free expansion over the
  whole connected component (the paper's ``SCS-Baseline``).
"""

from repro.search.baseline import scs_baseline
from repro.search.binary import scs_binary
from repro.search.expand import scs_expand
from repro.search.peel import scs_peel
from repro.search.result import SearchResult

__all__ = ["SearchResult", "scs_peel", "scs_expand", "scs_binary", "scs_baseline"]
