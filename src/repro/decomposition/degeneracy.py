"""The degeneracy δ of a bipartite graph (Definition 7).

δ is the largest integer such that the (δ,δ)-core is non-empty.  It equals the
maximum unipartite core number of the graph and is bounded by √m, which is the
key fact behind the O(δ·m) size of the degeneracy-bounded index ``I_δ``.
"""

from __future__ import annotations

import math

from repro.decomposition.abcore import abcore_vertices
from repro.decomposition.kcore import max_core_number
from repro.graph.bipartite import BipartiteGraph
from repro.graph.csr import resolve_backend

__all__ = ["degeneracy", "degeneracy_by_peeling", "degeneracy_upper_bound"]


def degeneracy(graph: BipartiteGraph, backend: str = "auto") -> int:
    """Return δ, the largest τ for which the (τ,τ)-core is non-empty.

    The dict backend computes it through the unipartite k-core decomposition;
    the CSR backend peels (τ,τ)-cores directly with the vectorised cascade.
    Returns 0 for an edgeless graph (no (1,1)-core exists).
    """
    if resolve_backend(backend, graph) == "csr":
        from repro.decomposition.csr_kernels import csr_degeneracy
        from repro.graph.csr import freeze

        return csr_degeneracy(freeze(graph))
    return max_core_number(graph)


def degeneracy_by_peeling(graph: BipartiteGraph) -> int:
    """Reference implementation: grow τ until the (τ,τ)-core becomes empty.

    Quadratically slower than :func:`degeneracy`; used in tests to validate
    the fast path.
    """
    tau = 0
    while abcore_vertices(graph, tau + 1, tau + 1):
        tau += 1
    return tau


def degeneracy_upper_bound(graph: BipartiteGraph) -> int:
    """The paper's bound δ ≤ √m (rounded up)."""
    return int(math.ceil(math.sqrt(graph.num_edges))) if graph.num_edges else 0
