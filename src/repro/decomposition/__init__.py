"""(α,β)-core decomposition machinery.

* :mod:`~repro.decomposition.abcore` — peeling computation of the (α,β)-core.
* :mod:`~repro.decomposition.offsets` — α-offsets / β-offsets (Definition 6).
* :mod:`~repro.decomposition.kcore` — unipartite k-core decomposition used to
  obtain the degeneracy.
* :mod:`~repro.decomposition.degeneracy` — the degeneracy δ (Definition 7).
* :mod:`~repro.decomposition.csr_kernels` — vectorised CSR twins of the
  peeling / offset / degeneracy kernels, selected via the ``backend=``
  parameter of the functions above (not imported here: it requires numpy,
  which stays optional).
"""

from repro.decomposition.abcore import abcore_subgraph, abcore_vertices
from repro.decomposition.degeneracy import degeneracy
from repro.decomposition.kcore import core_numbers
from repro.decomposition.offsets import alpha_offsets, beta_offsets, max_alpha, max_beta

__all__ = [
    "abcore_vertices",
    "abcore_subgraph",
    "alpha_offsets",
    "beta_offsets",
    "max_alpha",
    "max_beta",
    "core_numbers",
    "degeneracy",
]
