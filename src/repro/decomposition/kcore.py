"""Unipartite k-core decomposition (bin-sort peeling).

The paper computes the degeneracy δ of a bipartite graph with "the k-core
decomposition algorithm" because the (δ,δ)-core is exactly the δ-core of the
graph viewed as an ordinary (unipartite) graph, and δ therefore equals the
maximum core number.  This module implements the classical O(n + m) bin-sort
core decomposition of Batagelj & Zaveršnik / Khaouid et al.
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.bipartite import BipartiteGraph, Vertex

__all__ = ["core_numbers", "max_core_number"]


def core_numbers(graph: BipartiteGraph) -> Dict[Vertex, int]:
    """Return the (unipartite) core number of every vertex of ``graph``."""
    degrees: Dict[Vertex, int] = {v: graph.degree_of(v) for v in graph.vertices()}
    if not degrees:
        return {}

    max_degree = max(degrees.values())
    # bins[d] holds the vertices whose *current* position corresponds to degree d.
    bins: List[List[Vertex]] = [[] for _ in range(max_degree + 1)]
    for vertex, degree in degrees.items():
        bins[degree].append(vertex)

    core: Dict[Vertex, int] = {}
    current_degree: Dict[Vertex, int] = dict(degrees)
    processed: set[Vertex] = set()
    level = 0
    for degree in range(max_degree + 1):
        bucket = bins[degree]
        index = 0
        while index < len(bucket):
            vertex = bucket[index]
            index += 1
            if vertex in processed:
                continue
            if current_degree[vertex] > degree:
                # Stale entry: the vertex was re-binned to a lower degree earlier
                # or will be processed at its true degree later.
                continue
            level = max(level, degree)
            core[vertex] = level
            processed.add(vertex)
            other = vertex.side.other
            for nbr_label in graph.neighbors(vertex.side, vertex.label):
                nbr = Vertex(other, nbr_label)
                if nbr in processed:
                    continue
                if current_degree[nbr] > degree:
                    current_degree[nbr] -= 1
                    target = max(current_degree[nbr], degree)
                    bins[target].append(nbr)
    return core


def max_core_number(graph: BipartiteGraph) -> int:
    """Return the maximum core number (0 for an empty graph)."""
    numbers = core_numbers(graph)
    return max(numbers.values()) if numbers else 0
