"""α-offsets and β-offsets (Definition 6).

For a fixed α, the α-offset ``sa(v, α)`` of a vertex ``v`` is the largest β
such that ``v`` belongs to the (α,β)-core (0 when ``v`` is not even in the
(α,1)-core).  The β-offset ``sb(v, β)`` is defined symmetrically.

These values are the backbone of every index in the paper: a vertex ``v`` is
in the (α,β)-core exactly when ``sa(v, α) ≥ β`` (equivalently ``sb(v, β) ≥ α``).

The computation for a fixed α is a single peeling pass:

1. reduce the graph to its (α,1)-core (vertices dropped here get offset 0);
2. peel lower vertices in increasing order of their current degree while
   cascading the removal of upper vertices that fall below α; a vertex removed
   while the peeling threshold is β+1 has offset β.

A lazy min-heap over lower-vertex degrees keeps the pass near-linear
(O(m log m)) without the bookkeeping of a full bucket queue.  That is the
dict backend; with ``backend="csr"`` the same pass runs as a vectorised
frontier cascade over a frozen :class:`~repro.graph.csr.CSRBipartiteGraph`
(see :mod:`repro.decomposition.csr_kernels`), which is the hot path of index
construction on large graphs.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import TYPE_CHECKING, Dict, Iterable, List, Tuple

if TYPE_CHECKING:
    import numpy as np

from repro.graph.bipartite import BipartiteGraph, Side, Vertex
from repro.graph.csr import CSRBipartiteGraph, resolve_backend
from repro.utils.validation import check_positive_int

__all__ = [
    "alpha_offsets",
    "beta_offsets",
    "max_alpha",
    "max_beta",
    "offset_tables",
    "offsets_dict_from_arrays",
    "region_offsets_fixed_primary",
]


def max_alpha(graph: BipartiteGraph) -> int:
    """α_max: the largest α for which an (α,1)-core exists.

    It equals the maximum degree of the upper layer.
    """
    return graph.max_degree(Side.UPPER)


def max_beta(graph: BipartiteGraph) -> int:
    """β_max: the largest β for which a (1,β)-core exists."""
    return graph.max_degree(Side.LOWER)


def _snapshot(
    graph: BipartiteGraph,
) -> Tuple[Dict[Vertex, int], Dict[Vertex, Tuple[Vertex, ...]]]:
    degrees: Dict[Vertex, int] = {}
    neighbors: Dict[Vertex, Tuple[Vertex, ...]] = {}
    for vertex in graph.vertices():
        nbr_labels = graph.neighbors(vertex.side, vertex.label)
        other = vertex.side.other
        degrees[vertex] = len(nbr_labels)
        neighbors[vertex] = tuple(Vertex(other, label) for label in nbr_labels)
    return degrees, neighbors


def _offsets_for_fixed_primary(
    degrees: Dict[Vertex, int],
    neighbors: Dict[Vertex, Tuple[Vertex, ...]],
    primary_side: Side,
    primary_threshold: int,
) -> Dict[Vertex, int]:
    """Core of the offset computation.

    ``primary_side`` is the layer whose threshold is fixed (the upper layer for
    α-offsets); the other ("secondary") layer is peeled by increasing degree.
    Returns, for every vertex, the largest secondary threshold under which it
    survives together with the fixed primary threshold.

    Contract: per-vertex largest secondary threshold survived together with the fixed primary threshold; removed vertices keep offset 0.
    """
    secondary_side = primary_side.other
    offsets: Dict[Vertex, int] = {vertex: 0 for vertex in degrees}
    alive = set(degrees)

    def cascade(seed: Iterable[Vertex], secondary_threshold: int, offset_value: int) -> List[Vertex]:
        """Remove ``seed`` and everything forced out by the thresholds."""
        removed: List[Vertex] = []
        queue: deque[Vertex] = deque(seed)
        while queue:
            vertex = queue.popleft()
            if vertex not in alive:
                continue
            alive.discard(vertex)
            offsets[vertex] = offset_value
            removed.append(vertex)
            for nbr in neighbors[vertex]:
                if nbr not in alive:
                    continue
                degrees[nbr] -= 1
                if nbr.side is primary_side:
                    if degrees[nbr] < primary_threshold:
                        queue.append(nbr)
                else:
                    if degrees[nbr] < secondary_threshold:
                        queue.append(nbr)
        return removed

    # Phase 1: reduce to the (primary_threshold, 1)-core; dropped vertices keep
    # their offset of 0.
    initial = [
        v
        for v in alive
        if (v.side is primary_side and degrees[v] < primary_threshold)
        or (v.side is secondary_side and degrees[v] < 1)
    ]
    cascade(initial, 1, 0)

    # Phase 2: peel the secondary layer level by level.  A lazy heap tracks the
    # minimum current degree among alive secondary vertices.
    tiebreak = count()
    heap: List[Tuple[int, int, Vertex]] = [
        (degrees[v], next(tiebreak), v)
        for v in alive
        if v.side is secondary_side
    ]
    heapq.heapify(heap)

    def push_secondary(vertex: Vertex) -> None:
        heapq.heappush(heap, (degrees[vertex], next(tiebreak), vertex))

    level = 1
    while True:
        # Discard stale heap entries (dead vertices or outdated degrees).
        while heap and (heap[0][2] not in alive or heap[0][0] != degrees[heap[0][2]]):
            heapq.heappop(heap)
        if not heap:
            break
        min_degree = heap[0][0]
        # The whole remaining graph satisfies (primary_threshold, min_degree),
        # so every alive vertex survives at least to that level.
        level = max(level, min_degree)
        target = level + 1

        seeds: List[Vertex] = []
        while heap and heap[0][0] < target:
            degree, _, vertex = heapq.heappop(heap)
            if vertex in alive and degree == degrees[vertex]:
                seeds.append(vertex)
        removed = cascade(seeds, target, level)
        # Surviving secondary vertices whose degree changed need fresh heap entries.
        touched = {
            nbr
            for vertex in removed
            for nbr in neighbors[vertex]
            if nbr in alive and nbr.side is secondary_side
        }
        for vertex in touched:
            push_secondary(vertex)
        level = target
    return offsets


def region_offsets_fixed_primary(
    internal: Dict[Vertex, Tuple[Vertex, ...]],
    external: Dict[Vertex, List[int]],
    primary_side: Side,
    threshold: int,
) -> Dict[Vertex, int]:
    """Offsets of a candidate *region* with the rest of the graph frozen.

    The dict-backend twin of
    :func:`repro.decomposition.csr_kernels.csr_region_offsets_fixed_primary`:
    ``internal`` maps every region vertex to its neighbours *inside* the
    region, and ``external[v]`` lists the old offsets (at the processed level
    and half) of ``v``'s neighbours outside the region.  An outside neighbour
    with old offset ``o`` supports ``v`` for every secondary peeling target up
    to ``o`` — exact as long as no boundary vertex's offset actually changes,
    which the maintenance engine verifies after the pass.

    Regions are small by construction, so this uses plain scans instead of
    the lazy heap of :func:`_offsets_for_fixed_primary`.

    Contract: region offsets with outside neighbours frozen at their old offsets; exact whenever no boundary vertex's offset changes.
    """
    secondary_side = primary_side.other
    offsets: Dict[Vertex, int] = {vertex: 0 for vertex in internal}
    alive = set(internal)

    # Flatten the external supports into one expiry queue sorted by offset.
    events: List[Tuple[int, Vertex]] = sorted(
        (
            (offset, vertex)
            for vertex, ext in external.items()
            for offset in ext
            if offset >= 1
        ),
        key=lambda event: event[0],
    )
    cursor = 0
    degrees: Dict[Vertex, int] = {
        vertex: len(nbrs) + sum(1 for o in external.get(vertex, ()) if o >= 1)
        for vertex, nbrs in internal.items()
    }

    def cascade(seeds: Iterable[Vertex], thr_primary: int, thr_secondary: int) -> List[Vertex]:
        removed: List[Vertex] = []
        queue: deque[Vertex] = deque(seeds)
        while queue:
            vertex = queue.popleft()
            if vertex not in alive:
                continue
            alive.discard(vertex)
            removed.append(vertex)
            for nbr in internal[vertex]:
                if nbr not in alive:
                    continue
                degrees[nbr] -= 1
                limit = thr_primary if nbr.side is primary_side else thr_secondary
                if degrees[nbr] < limit:
                    queue.append(nbr)
        return removed

    # Phase 1: reduce to the (threshold, 1)-core under target-1 supports.
    cascade(
        [
            v
            for v in internal
            if degrees[v] < (threshold if v.side is primary_side else 1)
        ],
        threshold,
        1,
    )

    # Phase 2: raise the secondary target, expiring external supports as it
    # passes their offsets.  The loop runs while anything is alive: a vertex
    # supported purely by external neighbours has no internal secondary
    # neighbour left and must still be expired by offset.
    level = 1
    while alive:
        secondary_degrees = [
            degrees[v] for v in alive if v.side is secondary_side
        ]
        jumps = []
        if secondary_degrees:
            jumps.append(min(secondary_degrees))
        if cursor < len(events):
            jumps.append(events[cursor][0])
        if not jumps:  # pragma: no cover - defensive; cannot hold at thresholds >= 1
            break
        level = max(level, min(jumps))
        target = level + 1
        while cursor < len(events) and events[cursor][0] < target:
            owner = events[cursor][1]
            degrees[owner] -= 1
            cursor += 1
        seeds = [
            v
            for v in alive
            if degrees[v] < (threshold if v.side is primary_side else target)
        ]
        for vertex in cascade(seeds, threshold, target):
            offsets[vertex] = level
        level = target
    return offsets


def offsets_dict_from_arrays(
    csr: CSRBipartiteGraph, upper_offsets: "np.ndarray", lower_offsets: "np.ndarray"
) -> Dict[Vertex, int]:
    """Translate per-layer offset arrays into the dict-backend ``{Vertex: int}``.

    Starts from the graph's cached all-zero prototype (copied without
    re-hashing) and writes only the non-zero offsets; cores shrink quickly
    with the level, so this touches a small fraction of the vertices.
    """
    offsets = csr.zero_offsets()
    nz = upper_offsets.nonzero()[0]
    if nz.size:
        offsets.update(
            zip(csr.upper_handle_array()[nz].tolist(), upper_offsets[nz].tolist())
        )
    nz = lower_offsets.nonzero()[0]
    if nz.size:
        offsets.update(
            zip(csr.lower_handle_array()[nz].tolist(), lower_offsets[nz].tolist())
        )
    return offsets


def _offsets_csr(
    graph: BipartiteGraph, primary_side: Side, threshold: int
) -> Dict[Vertex, int]:
    from repro.decomposition.csr_kernels import csr_offsets_fixed_primary
    from repro.graph.csr import freeze

    csr = freeze(graph)
    off_u, off_l = csr_offsets_fixed_primary(csr, primary_side, threshold)
    return offsets_dict_from_arrays(csr, off_u, off_l)


def alpha_offsets(graph: BipartiteGraph, alpha: int, backend: str = "auto") -> Dict[Vertex, int]:
    """Return ``sa(v, alpha)`` for every vertex of ``graph``."""
    check_positive_int(alpha, "alpha")
    if resolve_backend(backend, graph) == "csr":
        return _offsets_csr(graph, Side.UPPER, alpha)
    degrees, neighbors = _snapshot(graph)
    return _offsets_for_fixed_primary(degrees, neighbors, Side.UPPER, alpha)


def beta_offsets(graph: BipartiteGraph, beta: int, backend: str = "auto") -> Dict[Vertex, int]:
    """Return ``sb(v, beta)`` for every vertex of ``graph``."""
    check_positive_int(beta, "beta")
    if resolve_backend(backend, graph) == "csr":
        return _offsets_csr(graph, Side.LOWER, beta)
    degrees, neighbors = _snapshot(graph)
    return _offsets_for_fixed_primary(degrees, neighbors, Side.LOWER, beta)


def offset_tables(
    graph: BipartiteGraph,
    max_primary: int,
    side: Side = Side.UPPER,
    backend: str = "auto",
) -> Dict[int, Dict[Vertex, int]]:
    """Offsets for every fixed threshold 1..``max_primary`` on ``side``.

    ``side=Side.UPPER`` yields ``{alpha: {vertex: sa(vertex, alpha)}}``; the
    symmetric call with ``side=Side.LOWER`` yields β-offset tables.  This is
    the workhorse of the basic-index and bicore-index construction and runs in
    O(max_primary · m log m) on the dict backend.  The CSR backend freezes the
    graph once and reuses the snapshot across all levels.
    """
    tables: Dict[int, Dict[Vertex, int]] = {}
    if resolve_backend(backend, graph) == "csr":
        from repro.decomposition.csr_kernels import csr_offsets_fixed_primary
        from repro.graph.csr import freeze

        csr = freeze(graph)
        for threshold in range(1, max_primary + 1):
            off_u, off_l = csr_offsets_fixed_primary(csr, side, threshold)
            tables[threshold] = offsets_dict_from_arrays(csr, off_u, off_l)
        return tables
    for threshold in range(1, max_primary + 1):
        degrees, neighbors = _snapshot(graph)
        tables[threshold] = _offsets_for_fixed_primary(degrees, neighbors, side, threshold)
    return tables
