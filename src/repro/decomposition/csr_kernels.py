"""Array-native peeling kernels over :class:`~repro.graph.csr.CSRBipartiteGraph`.

These are the CSR counterparts of the dict-backend algorithms in
:mod:`repro.decomposition.abcore`, :mod:`repro.decomposition.offsets` and
:mod:`repro.decomposition.degeneracy`.  They share one building block: a
*vectorised frontier cascade*.  Instead of popping vertices one at a time off
a queue or lazy heap, each round removes the entire current frontier at once,
decrements neighbour degrees with a single ``bincount`` (or ``subtract.at``
for sparse frontiers) and derives the next frontier from the set of touched
vertices — so the per-vertex Python bookkeeping of the dict backend collapses
into a handful of numpy calls per cascade depth.

All kernels return plain numpy arrays indexed by the dense vertex ids of the
frozen graph; translating back to :class:`~repro.graph.bipartite.Vertex`
handles is the caller's job (see the ``backend=`` dispatchers).  Every kernel
is semantically identical to its dict twin — the cross-backend agreement suite
(``tests/test_csr_agreement.py``) asserts exact equality on randomized inputs.

This module imports numpy unconditionally; callers must route through
:func:`repro.graph.csr.resolve_backend`, which never selects the CSR backend
when numpy is missing.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.bipartite import Side
from repro.graph.csr import CSRBipartiteGraph

__all__ = [
    "csr_abcore_masks",
    "csr_degeneracy",
    "csr_offsets_fixed_primary",
    "csr_region_offsets_fixed_primary",
]

_EMPTY = np.empty(0, dtype=np.int64)


def _expand_neighbors(indptr, indices, verts):
    """Concatenate the CSR neighbour slices of ``verts`` (with multiplicity)."""
    if verts.size == 1:
        v = int(verts[0])
        return indices[indptr[v] : indptr[v + 1]]
    counts = indptr[verts + 1] - indptr[verts]
    total = int(counts.sum())
    if total == 0:
        return _EMPTY
    starts = indptr[verts]
    # Positions of each slice inside the concatenated output.
    slice_offsets = np.cumsum(counts) - counts
    flat = np.arange(total, dtype=np.int64) + np.repeat(starts - slice_offsets, counts)
    return indices[flat]


def _violators(touched, alive, degrees, threshold):
    """Deduplicated, currently-alive vertices of ``touched`` below ``threshold``.

    Filters before deduplicating (violators are usually a small fraction of
    the touched frontier) and dedups with an in-place sort, which beats
    ``np.unique``'s machinery on the small arrays cascades produce.
    """
    cand = touched[alive[touched] & (degrees[touched] < threshold)]
    if cand.size <= 1:
        return cand
    cand.sort()
    keep = np.empty(cand.shape[0], dtype=bool)
    keep[0] = True
    np.not_equal(cand[1:], cand[:-1], out=keep[1:])
    return cand[keep]


def _decrement(degrees, touched):
    """``degrees[v] -= multiplicity of v in touched`` for every touched vertex."""
    if touched.size == 0:
        return
    # bincount is O(n + t); ufunc.at is O(t) with a bigger constant.  Switch on
    # frontier density so both the "one huge wave" and the "long thin chain"
    # cascade shapes stay cheap.
    if touched.size * 16 >= degrees.shape[0]:
        degrees -= np.bincount(touched, minlength=degrees.shape[0])
    else:
        np.subtract.at(degrees, touched, 1)


def _cascade(
    csr: CSRBipartiteGraph,
    alive_u,
    alive_l,
    deg_u,
    deg_l,
    thr_u: int,
    thr_l: int,
    seeds_u,
    seeds_l,
) -> Tuple[np.ndarray, np.ndarray]:
    """Remove ``seeds`` plus everything forced out by the degree thresholds.

    ``alive_*`` and ``deg_*`` are mutated in place; degrees of removed
    vertices become meaningless (exactly like the dict-backend peeling).
    Returns the removed vertex ids per layer, in removal-wave order.
    """
    removed_u = []
    removed_l = []
    while seeds_u.size or seeds_l.size:
        if seeds_u.size:
            alive_u[seeds_u] = False
            removed_u.append(seeds_u)
        if seeds_l.size:
            alive_l[seeds_l] = False
            removed_l.append(seeds_l)
        touched_l = _expand_neighbors(csr.u_indptr, csr.u_indices, seeds_u)
        touched_u = _expand_neighbors(csr.l_indptr, csr.l_indices, seeds_l)
        _decrement(deg_l, touched_l)
        _decrement(deg_u, touched_u)
        seeds_l = _violators(touched_l, alive_l, deg_l, thr_l) if touched_l.size else _EMPTY
        seeds_u = _violators(touched_u, alive_u, deg_u, thr_u) if touched_u.size else _EMPTY
    cat_u = np.concatenate(removed_u) if removed_u else _EMPTY
    cat_l = np.concatenate(removed_l) if removed_l else _EMPTY
    return cat_u, cat_l


def csr_abcore_masks(
    csr: CSRBipartiteGraph, alpha: int, beta: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Boolean membership masks of the (α,β)-core, per layer.

    ``masks[0][i]`` is True when upper vertex ``i`` survives the peeling;
    symmetric for the lower layer.
    """
    deg_u = csr.upper_degrees().copy()
    deg_l = csr.lower_degrees().copy()
    alive_u = np.ones(csr.num_upper, dtype=bool)
    alive_l = np.ones(csr.num_lower, dtype=bool)
    seeds_u = np.flatnonzero(deg_u < alpha)
    seeds_l = np.flatnonzero(deg_l < beta)
    _cascade(csr, alive_u, alive_l, deg_u, deg_l, alpha, beta, seeds_u, seeds_l)
    return alive_u, alive_l


def csr_degeneracy(csr: CSRBipartiteGraph) -> int:
    """δ: the largest τ with a non-empty (τ,τ)-core (0 for an edgeless graph).

    Peels at τ = 1, 2, … over the *same* degree arrays — each round reuses the
    residual (τ-1,τ-1)-core, so total work is O(δ·n + m) like the bin-sort
    decomposition, but with whole-frontier numpy steps.
    """
    deg_u = csr.upper_degrees().copy()
    deg_l = csr.lower_degrees().copy()
    alive_u = np.ones(csr.num_upper, dtype=bool)
    alive_l = np.ones(csr.num_lower, dtype=bool)
    tau = 0
    while bool(alive_u.any()) or bool(alive_l.any()):
        tau += 1
        seeds_u = np.flatnonzero(alive_u & (deg_u < tau))
        seeds_l = np.flatnonzero(alive_l & (deg_l < tau))
        _cascade(csr, alive_u, alive_l, deg_u, deg_l, tau, tau, seeds_u, seeds_l)
    return max(tau - 1, 0)


def csr_offsets_fixed_primary(
    csr: CSRBipartiteGraph, primary_side: Side, threshold: int
) -> Tuple[np.ndarray, np.ndarray]:
    """α-offsets (``primary_side=UPPER``) or β-offsets (``LOWER``) as arrays.

    Returns ``(upper_offsets, lower_offsets)``: for every vertex, the largest
    secondary threshold under which it survives together with the fixed
    primary ``threshold`` — the CSR twin of
    :func:`repro.decomposition.offsets._offsets_for_fixed_primary`.
    """
    deg_u = csr.upper_degrees().copy()
    deg_l = csr.lower_degrees().copy()
    alive_u = np.ones(csr.num_upper, dtype=bool)
    alive_l = np.ones(csr.num_lower, dtype=bool)
    off_u = np.zeros(csr.num_upper, dtype=np.int64)
    off_l = np.zeros(csr.num_lower, dtype=np.int64)

    if primary_side is Side.UPPER:
        thr_u, thr_l = threshold, 1
    else:
        thr_u, thr_l = 1, threshold

    # Phase 1: reduce to the (threshold, 1)-core; dropped vertices keep 0.
    seeds_u = np.flatnonzero(deg_u < thr_u)
    seeds_l = np.flatnonzero(deg_l < thr_l)
    _cascade(csr, alive_u, alive_l, deg_u, deg_l, thr_u, thr_l, seeds_u, seeds_l)

    alive_sec, deg_sec = (
        (alive_l, deg_l) if primary_side is Side.UPPER else (alive_u, deg_u)
    )

    # Phase 2: peel the secondary layer level by level.  Everything removed
    # while the peeling target is ``level + 1`` has offset ``level``.  The
    # alive id set is carried across iterations and re-filtered instead of
    # re-scanning the full layer at every level.
    alive_ids = np.flatnonzero(alive_sec)
    level = 1
    while alive_ids.size:
        alive_ids = alive_ids[alive_sec[alive_ids]]
        if alive_ids.size == 0:
            break
        alive_degrees = deg_sec[alive_ids]
        min_degree = int(alive_degrees.min())
        level = max(level, min_degree)
        target = level + 1
        seeds_sec = alive_ids[alive_degrees < target]
        if primary_side is Side.UPPER:
            removed_u, removed_l = _cascade(
                csr, alive_u, alive_l, deg_u, deg_l, threshold, target, _EMPTY, seeds_sec
            )
        else:
            removed_u, removed_l = _cascade(
                csr, alive_u, alive_l, deg_u, deg_l, target, threshold, seeds_sec, _EMPTY
            )
        off_u[removed_u] = level
        off_l[removed_l] = level
        level = target
    return off_u, off_l


class _ExternalSupports:
    """External support entries of one layer, consumed in offset order.

    Each entry ``(owner, offset)`` says: the region vertex ``owner`` has one
    neighbour *outside* the region whose old offset at the processed level is
    ``offset`` — that neighbour keeps supporting ``owner`` exactly while the
    secondary peeling target stays ``<= offset``.  Entries are sorted by
    offset once; :meth:`drop_below` consumes the prefix that expires when the
    target rises and returns the owners whose degrees must drop.
    """

    __slots__ = ("owners", "offsets", "cursor")

    def __init__(self, owners, offsets) -> None:
        owners = np.asarray(owners, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        keep = offsets >= 1  # an offset-0 neighbour never supports anyone
        order = np.argsort(offsets[keep], kind="stable")
        self.owners = owners[keep][order]
        self.offsets = offsets[keep][order]
        self.cursor = 0

    def next_expiry(self) -> int:
        """Smallest offset still supporting anyone (-1 when exhausted)."""
        if self.cursor >= self.offsets.shape[0]:
            return -1
        return int(self.offsets[self.cursor])

    def drop_below(self, target: int):
        """Owners of the entries that stop counting once the target is ``target``."""
        end = int(np.searchsorted(self.offsets, target, side="left"))
        dropped = self.owners[self.cursor : end]
        self.cursor = end
        return dropped


def csr_region_offsets_fixed_primary(
    csr: CSRBipartiteGraph,
    ext_owner_u,
    ext_offset_u,
    ext_owner_l,
    ext_offset_l,
    primary_side: Side,
    threshold: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Offsets of a *region* sub-CSR with the rest of the graph frozen.

    ``csr`` holds only the edges internal to the candidate region (the paper's
    S⁺/S⁻ set around an updated edge); every edge leaving the region is
    represented by one external entry ``(owner id, old offset of the outside
    neighbour at this level)``.  Because a vertex belongs to the (τ,β)-core
    exactly when its offset at level τ is ≥ β, an outside neighbour supports
    its region owner for every secondary target up to that old offset — so as
    long as no boundary vertex's offset actually changes (which the caller
    verifies afterwards), peeling the region against these frozen supports
    reproduces exactly the offsets a whole-graph pass would compute.

    The structure mirrors :func:`csr_offsets_fixed_primary`; the one extra
    move is that every rise of the secondary target first expires the external
    entries below it (a plain degree decrement), and the level jump is capped
    by the next external expiry so supports stay constant across a jump.
    """
    num_u, num_l = csr.num_upper, csr.num_lower
    deg_u = csr.upper_degrees().copy()
    deg_l = csr.lower_degrees().copy()
    ext_u = _ExternalSupports(ext_owner_u, ext_offset_u)
    ext_l = _ExternalSupports(ext_owner_l, ext_offset_l)
    if ext_u.owners.size:
        deg_u += np.bincount(ext_u.owners, minlength=num_u)
    if ext_l.owners.size:
        deg_l += np.bincount(ext_l.owners, minlength=num_l)
    alive_u = np.ones(num_u, dtype=bool)
    alive_l = np.ones(num_l, dtype=bool)
    off_u = np.zeros(num_u, dtype=np.int64)
    off_l = np.zeros(num_l, dtype=np.int64)

    if primary_side is Side.UPPER:
        thr_u, thr_l = threshold, 1
    else:
        thr_u, thr_l = 1, threshold

    # Phase 1: reduce to the (threshold, 1)-core under target-1 supports.
    seeds_u = np.flatnonzero(deg_u < thr_u)
    seeds_l = np.flatnonzero(deg_l < thr_l)
    _cascade(csr, alive_u, alive_l, deg_u, deg_l, thr_u, thr_l, seeds_u, seeds_l)

    alive_sec, deg_sec = (
        (alive_l, deg_l) if primary_side is Side.UPPER else (alive_u, deg_u)
    )

    # Phase 2: raise the secondary target step by step.  Unlike the
    # whole-graph kernel the loop runs while *either* layer is alive: a
    # primary vertex supported purely by external neighbours outlives every
    # internal secondary vertex and still has to be expired by offset.
    level = 1
    while bool(alive_u.any()) or bool(alive_l.any()):
        alive_ids = np.flatnonzero(alive_sec)
        min_degree = (
            int(deg_sec[alive_ids].min()) if alive_ids.size else np.iinfo(np.int64).max
        )
        expiries = [e for e in (ext_u.next_expiry(), ext_l.next_expiry()) if e >= 0]
        jump = min([min_degree] + expiries)
        if jump == np.iinfo(np.int64).max:  # pragma: no cover - defensive
            break  # nothing left to expire and no secondary vertex alive
        level = max(level, jump)
        target = level + 1
        _decrement(deg_u, ext_u.drop_below(target))
        _decrement(deg_l, ext_l.drop_below(target))
        if primary_side is Side.UPPER:
            thr_u, thr_l = threshold, target
        else:
            thr_u, thr_l = target, threshold
        seeds_u = np.flatnonzero(alive_u & (deg_u < thr_u))
        seeds_l = np.flatnonzero(alive_l & (deg_l < thr_l))
        removed_u, removed_l = _cascade(
            csr, alive_u, alive_l, deg_u, deg_l, thr_u, thr_l, seeds_u, seeds_l
        )
        off_u[removed_u] = level
        off_l[removed_l] = level
        level = target
    return off_u, off_l
