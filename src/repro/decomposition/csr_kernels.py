"""Array-native peeling kernels over :class:`~repro.graph.csr.CSRBipartiteGraph`.

These are the CSR counterparts of the dict-backend algorithms in
:mod:`repro.decomposition.abcore`, :mod:`repro.decomposition.offsets` and
:mod:`repro.decomposition.degeneracy`.  They share one building block: a
*vectorised frontier cascade*.  Instead of popping vertices one at a time off
a queue or lazy heap, each round removes the entire current frontier at once,
decrements neighbour degrees with a single ``bincount`` (or ``subtract.at``
for sparse frontiers) and derives the next frontier from the set of touched
vertices — so the per-vertex Python bookkeeping of the dict backend collapses
into a handful of numpy calls per cascade depth.

All kernels return plain numpy arrays indexed by the dense vertex ids of the
frozen graph; translating back to :class:`~repro.graph.bipartite.Vertex`
handles is the caller's job (see the ``backend=`` dispatchers).  Every kernel
is semantically identical to its dict twin — the cross-backend agreement suite
(``tests/test_csr_agreement.py``) asserts exact equality on randomized inputs.

This module imports numpy unconditionally; callers must route through
:func:`repro.graph.csr.resolve_backend`, which never selects the CSR backend
when numpy is missing.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import Side
from repro.graph.csr import CSRBipartiteGraph
from repro.search.edge_scs import SCS_EDGE_METHODS
from repro.utils.validation import check_thresholds

__all__ = [
    "csr_abcore_masks",
    "csr_degeneracy",
    "csr_offsets_fixed_primary",
    "csr_region_offsets_fixed_primary",
    "csr_significant_edges",
]

_EMPTY = np.empty(0, dtype=np.int64)


def _expand_neighbors(indptr: np.ndarray, indices: np.ndarray, verts: np.ndarray) -> np.ndarray:
    """Concatenate the CSR neighbour slices of ``verts`` (with multiplicity)."""
    if verts.size == 1:
        v = int(verts[0])
        return indices[indptr[v] : indptr[v + 1]]
    counts = indptr[verts + 1] - indptr[verts]
    total = int(counts.sum())
    if total == 0:
        return _EMPTY
    starts = indptr[verts]
    # Positions of each slice inside the concatenated output.
    slice_offsets = np.cumsum(counts) - counts
    flat = np.arange(total, dtype=np.int64) + np.repeat(starts - slice_offsets, counts)
    return indices[flat]


def _violators(touched: np.ndarray, alive: np.ndarray, degrees: np.ndarray, threshold: int) -> np.ndarray:
    """Deduplicated, currently-alive vertices of ``touched`` below ``threshold``.

    Filters before deduplicating (violators are usually a small fraction of
    the touched frontier) and dedups with an in-place sort, which beats
    ``np.unique``'s machinery on the small arrays cascades produce.
    """
    cand = touched[alive[touched] & (degrees[touched] < threshold)]
    if cand.size <= 1:
        return cand
    cand.sort()
    keep = np.empty(cand.shape[0], dtype=bool)
    keep[0] = True
    np.not_equal(cand[1:], cand[:-1], out=keep[1:])
    return cand[keep]


def _decrement(degrees: np.ndarray, touched: np.ndarray) -> None:
    """``degrees[v] -= multiplicity of v in touched`` for every touched vertex."""
    if touched.size == 0:
        return
    # bincount is O(n + t); ufunc.at is O(t) with a bigger constant.  Switch on
    # frontier density so both the "one huge wave" and the "long thin chain"
    # cascade shapes stay cheap.
    if touched.size * 16 >= degrees.shape[0]:
        degrees -= np.bincount(touched, minlength=degrees.shape[0])
    else:
        np.subtract.at(degrees, touched, 1)


def _cascade(
    csr: CSRBipartiteGraph,
    alive_u: np.ndarray,
    alive_l: np.ndarray,
    deg_u: np.ndarray,
    deg_l: np.ndarray,
    thr_u: int,
    thr_l: int,
    seeds_u: np.ndarray,
    seeds_l: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Remove ``seeds`` plus everything forced out by the degree thresholds.

    ``alive_*`` and ``deg_*`` are mutated in place; degrees of removed
    vertices become meaningless (exactly like the dict-backend peeling).
    Returns the removed vertex ids per layer, in removal-wave order.
    """
    removed_u = []
    removed_l = []
    while seeds_u.size or seeds_l.size:
        if seeds_u.size:
            alive_u[seeds_u] = False
            removed_u.append(seeds_u)
        if seeds_l.size:
            alive_l[seeds_l] = False
            removed_l.append(seeds_l)
        touched_l = _expand_neighbors(csr.u_indptr, csr.u_indices, seeds_u)
        touched_u = _expand_neighbors(csr.l_indptr, csr.l_indices, seeds_l)
        _decrement(deg_l, touched_l)
        _decrement(deg_u, touched_u)
        seeds_l = _violators(touched_l, alive_l, deg_l, thr_l) if touched_l.size else _EMPTY
        seeds_u = _violators(touched_u, alive_u, deg_u, thr_u) if touched_u.size else _EMPTY
    cat_u = np.concatenate(removed_u) if removed_u else _EMPTY
    cat_l = np.concatenate(removed_l) if removed_l else _EMPTY
    return cat_u, cat_l


def csr_abcore_masks(
    csr: CSRBipartiteGraph, alpha: int, beta: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Boolean membership masks of the (α,β)-core, per layer.

    ``masks[0][i]`` is True when upper vertex ``i`` survives the peeling;
    symmetric for the lower layer.
    """
    deg_u = csr.upper_degrees().copy()
    deg_l = csr.lower_degrees().copy()
    alive_u = np.ones(csr.num_upper, dtype=bool)
    alive_l = np.ones(csr.num_lower, dtype=bool)
    seeds_u = np.flatnonzero(deg_u < alpha)
    seeds_l = np.flatnonzero(deg_l < beta)
    _cascade(csr, alive_u, alive_l, deg_u, deg_l, alpha, beta, seeds_u, seeds_l)
    return alive_u, alive_l


def csr_degeneracy(csr: CSRBipartiteGraph) -> int:
    """δ: the largest τ with a non-empty (τ,τ)-core (0 for an edgeless graph).

    Peels at τ = 1, 2, … over the *same* degree arrays — each round reuses the
    residual (τ-1,τ-1)-core, so total work is O(δ·n + m) like the bin-sort
    decomposition, but with whole-frontier numpy steps.
    """
    deg_u = csr.upper_degrees().copy()
    deg_l = csr.lower_degrees().copy()
    alive_u = np.ones(csr.num_upper, dtype=bool)
    alive_l = np.ones(csr.num_lower, dtype=bool)
    tau = 0
    while bool(alive_u.any()) or bool(alive_l.any()):
        tau += 1
        seeds_u = np.flatnonzero(alive_u & (deg_u < tau))
        seeds_l = np.flatnonzero(alive_l & (deg_l < tau))
        _cascade(csr, alive_u, alive_l, deg_u, deg_l, tau, tau, seeds_u, seeds_l)
    return max(tau - 1, 0)


def csr_offsets_fixed_primary(
    csr: CSRBipartiteGraph, primary_side: Side, threshold: int
) -> Tuple[np.ndarray, np.ndarray]:
    """α-offsets (``primary_side=UPPER``) or β-offsets (``LOWER``) as arrays.

    Returns ``(upper_offsets, lower_offsets)``: for every vertex, the largest
    secondary threshold under which it survives together with the fixed
    primary ``threshold`` — the CSR twin of
    :func:`repro.decomposition.offsets._offsets_for_fixed_primary`.

    Contract: per-vertex largest secondary threshold survived together with the fixed primary threshold; removed vertices keep offset 0.
    """
    deg_u = csr.upper_degrees().copy()
    deg_l = csr.lower_degrees().copy()
    alive_u = np.ones(csr.num_upper, dtype=bool)
    alive_l = np.ones(csr.num_lower, dtype=bool)
    off_u = np.zeros(csr.num_upper, dtype=np.int64)
    off_l = np.zeros(csr.num_lower, dtype=np.int64)

    if primary_side is Side.UPPER:
        thr_u, thr_l = threshold, 1
    else:
        thr_u, thr_l = 1, threshold

    # Phase 1: reduce to the (threshold, 1)-core; dropped vertices keep 0.
    seeds_u = np.flatnonzero(deg_u < thr_u)
    seeds_l = np.flatnonzero(deg_l < thr_l)
    _cascade(csr, alive_u, alive_l, deg_u, deg_l, thr_u, thr_l, seeds_u, seeds_l)

    alive_sec, deg_sec = (
        (alive_l, deg_l) if primary_side is Side.UPPER else (alive_u, deg_u)
    )

    # Phase 2: peel the secondary layer level by level.  Everything removed
    # while the peeling target is ``level + 1`` has offset ``level``.  The
    # alive id set is carried across iterations and re-filtered instead of
    # re-scanning the full layer at every level.
    alive_ids = np.flatnonzero(alive_sec)
    level = 1
    while alive_ids.size:
        alive_ids = alive_ids[alive_sec[alive_ids]]
        if alive_ids.size == 0:
            break
        alive_degrees = deg_sec[alive_ids]
        min_degree = int(alive_degrees.min())
        level = max(level, min_degree)
        target = level + 1
        seeds_sec = alive_ids[alive_degrees < target]
        if primary_side is Side.UPPER:
            removed_u, removed_l = _cascade(
                csr, alive_u, alive_l, deg_u, deg_l, threshold, target, _EMPTY, seeds_sec
            )
        else:
            removed_u, removed_l = _cascade(
                csr, alive_u, alive_l, deg_u, deg_l, target, threshold, seeds_sec, _EMPTY
            )
        off_u[removed_u] = level
        off_l[removed_l] = level
        level = target
    return off_u, off_l


class _ExternalSupports:
    """External support entries of one layer, consumed in offset order.

    Each entry ``(owner, offset)`` says: the region vertex ``owner`` has one
    neighbour *outside* the region whose old offset at the processed level is
    ``offset`` — that neighbour keeps supporting ``owner`` exactly while the
    secondary peeling target stays ``<= offset``.  Entries are sorted by
    offset once; :meth:`drop_below` consumes the prefix that expires when the
    target rises and returns the owners whose degrees must drop.
    """

    __slots__ = ("owners", "offsets", "cursor")

    def __init__(self, owners: np.ndarray, offsets: np.ndarray) -> None:
        owners = np.asarray(owners, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        keep = offsets >= 1  # an offset-0 neighbour never supports anyone
        order = np.argsort(offsets[keep], kind="stable")
        self.owners = owners[keep][order]
        self.offsets = offsets[keep][order]
        self.cursor = 0

    def next_expiry(self) -> int:
        """Smallest offset still supporting anyone (-1 when exhausted)."""
        if self.cursor >= self.offsets.shape[0]:
            return -1
        return int(self.offsets[self.cursor])

    def drop_below(self, target: int) -> np.ndarray:
        """Owners of the entries that stop counting once the target is ``target``."""
        end = int(np.searchsorted(self.offsets, target, side="left"))
        dropped = self.owners[self.cursor : end]
        self.cursor = end
        return dropped


def csr_region_offsets_fixed_primary(
    csr: CSRBipartiteGraph,
    ext_owner_u: np.ndarray,
    ext_offset_u: np.ndarray,
    ext_owner_l: np.ndarray,
    ext_offset_l: np.ndarray,
    primary_side: Side,
    threshold: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Offsets of a *region* sub-CSR with the rest of the graph frozen.

    ``csr`` holds only the edges internal to the candidate region (the paper's
    S⁺/S⁻ set around an updated edge); every edge leaving the region is
    represented by one external entry ``(owner id, old offset of the outside
    neighbour at this level)``.  Because a vertex belongs to the (τ,β)-core
    exactly when its offset at level τ is ≥ β, an outside neighbour supports
    its region owner for every secondary target up to that old offset — so as
    long as no boundary vertex's offset actually changes (which the caller
    verifies afterwards), peeling the region against these frozen supports
    reproduces exactly the offsets a whole-graph pass would compute.

    The structure mirrors :func:`csr_offsets_fixed_primary`; the one extra
    move is that every rise of the secondary target first expires the external
    entries below it (a plain degree decrement), and the level jump is capped
    by the next external expiry so supports stay constant across a jump.

    Contract: region offsets with outside neighbours frozen at their old offsets; exact whenever no boundary vertex's offset changes.
    """
    num_u, num_l = csr.num_upper, csr.num_lower
    deg_u = csr.upper_degrees().copy()
    deg_l = csr.lower_degrees().copy()
    ext_u = _ExternalSupports(ext_owner_u, ext_offset_u)
    ext_l = _ExternalSupports(ext_owner_l, ext_offset_l)
    if ext_u.owners.size:
        deg_u += np.bincount(ext_u.owners, minlength=num_u)
    if ext_l.owners.size:
        deg_l += np.bincount(ext_l.owners, minlength=num_l)
    alive_u = np.ones(num_u, dtype=bool)
    alive_l = np.ones(num_l, dtype=bool)
    off_u = np.zeros(num_u, dtype=np.int64)
    off_l = np.zeros(num_l, dtype=np.int64)

    if primary_side is Side.UPPER:
        thr_u, thr_l = threshold, 1
    else:
        thr_u, thr_l = 1, threshold

    # Phase 1: reduce to the (threshold, 1)-core under target-1 supports.
    seeds_u = np.flatnonzero(deg_u < thr_u)
    seeds_l = np.flatnonzero(deg_l < thr_l)
    _cascade(csr, alive_u, alive_l, deg_u, deg_l, thr_u, thr_l, seeds_u, seeds_l)

    alive_sec, deg_sec = (
        (alive_l, deg_l) if primary_side is Side.UPPER else (alive_u, deg_u)
    )

    # Phase 2: raise the secondary target step by step.  Unlike the
    # whole-graph kernel the loop runs while *either* layer is alive: a
    # primary vertex supported purely by external neighbours outlives every
    # internal secondary vertex and still has to be expired by offset.
    level = 1
    while bool(alive_u.any()) or bool(alive_l.any()):
        alive_ids = np.flatnonzero(alive_sec)
        min_degree = (
            int(deg_sec[alive_ids].min()) if alive_ids.size else np.iinfo(np.int64).max
        )
        expiries = [e for e in (ext_u.next_expiry(), ext_l.next_expiry()) if e >= 0]
        jump = min([min_degree] + expiries)
        if jump == np.iinfo(np.int64).max:  # pragma: no cover - defensive
            break  # nothing left to expire and no secondary vertex alive
        level = max(level, jump)
        target = level + 1
        _decrement(deg_u, ext_u.drop_below(target))
        _decrement(deg_l, ext_l.drop_below(target))
        if primary_side is Side.UPPER:
            thr_u, thr_l = threshold, target
        else:
            thr_u, thr_l = target, threshold
        seeds_u = np.flatnonzero(alive_u & (deg_u < thr_u))
        seeds_l = np.flatnonzero(alive_l & (deg_l < thr_l))
        removed_u, removed_l = _cascade(
            csr, alive_u, alive_l, deg_u, deg_l, thr_u, thr_l, seeds_u, seeds_l
        )
        off_u[removed_u] = level
        off_l[removed_l] = level
        level = target
    return off_u, off_l


# --------------------------------------------------------------------------- #
# significant search over community edge arrays (step 2 of the query pipeline)
# --------------------------------------------------------------------------- #
#
# Unlike the kernels above, these operate on the *wire form* of one retrieved
# community — three parallel edge arrays — rather than a frozen whole-graph
# CSR.  The pure-python twins live in :mod:`repro.search.edge_scs`; both are
# asserted element-wise identical to the dict-backed ``scs_*`` oracle by the
# agreement suite.


def _edge_core(
    us: np.ndarray,
    ls: np.ndarray,
    num_u: int,
    num_l: int,
    alive: np.ndarray,
    alpha: int,
    beta: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shrink ``alive`` to the (α,β)-core of the kept edges.

    The round cascade of Algorithm 4 run to fixpoint: every iteration kills
    all edges incident to a below-threshold vertex at once.  Returns the core
    mask together with the per-vertex degrees at the fixpoint (removed
    vertices end at degree 0).
    """
    du = np.bincount(us[alive], minlength=num_u)
    dl = np.bincount(ls[alive], minlength=num_l)
    while True:
        bad_u = (du > 0) & (du < alpha)
        bad_l = (dl > 0) & (dl < beta)
        doomed = alive & (bad_u[us] | bad_l[ls])
        if not doomed.any():
            return alive, du, dl
        alive = alive & ~doomed
        du = du - np.bincount(us[doomed], minlength=num_u)
        dl = dl - np.bincount(ls[doomed], minlength=num_l)


def _edge_component(
    us: np.ndarray,
    ls: np.ndarray,
    alive: np.ndarray,
    query_upper: bool,
    query: int,
    num_u: int,
    num_l: int,
) -> np.ndarray:
    """Edge positions of the query's connected component inside ``alive``."""
    in_u = np.zeros(num_u, dtype=bool)
    in_l = np.zeros(num_l, dtype=bool)
    (in_u if query_upper else in_l)[query] = True
    while True:
        reach = alive & (in_u[us] | in_l[ls])
        known_u, known_l = int(in_u.sum()), int(in_l.sum())
        in_u[us[reach]] = True
        in_l[ls[reach]] = True
        if int(in_u.sum()) == known_u and int(in_l.sum()) == known_l:
            # At the fixpoint every reached edge has both endpoints inside.
            return np.flatnonzero(reach)


def _peel_mask(
    us: np.ndarray,
    ls: np.ndarray,
    weight: np.ndarray,
    num_u: int,
    num_l: int,
    alive: np.ndarray,
    query_upper: bool,
    query: int,
    alpha: int,
    beta: int,
) -> np.ndarray:
    """Peel the ``alive`` edge subset; the array twin of ``scs_peel``.

    Returns the kept edge positions (ascending).  Rounds remove every alive
    edge carrying the current minimum weight, cascade, and on query death
    restore the round and return the query's component.

    Contract: remove minimum-weight edges round by round, cascade the core, and return the query's component of the last surviving round.
    """
    live = np.flatnonzero(alive)
    if np.unique(weight[live]).shape[0] <= 1:
        # Single distinct weight: the (sub)community itself is the answer.
        return live
    alive = alive.copy()
    order = live[np.argsort(weight[live], kind="stable")]
    sorted_w = weight[order]
    du = np.bincount(us[alive], minlength=num_u)
    dl = np.bincount(ls[alive], minlength=num_l)
    query_threshold = alpha if query_upper else beta
    pos, total = 0, int(order.shape[0])
    while pos < total:
        # Skip edges already removed by an earlier cascade (the cursor only
        # moves forward, so this stays amortised O(E) over the whole peel).
        while pos < total and not alive[order[pos]]:
            pos += 1
        if pos >= total:
            break
        current_weight = sorted_w[pos]
        run_end = int(np.searchsorted(sorted_w, current_weight, side="right"))
        round_edges = order[pos:run_end]
        round_edges = round_edges[alive[round_edges]]
        pos = run_end
        previous = alive.copy()
        alive[round_edges] = False
        du -= np.bincount(us[round_edges], minlength=num_u)
        dl -= np.bincount(ls[round_edges], minlength=num_l)
        while True:
            bad_u = (du > 0) & (du < alpha)
            bad_l = (dl > 0) & (dl < beta)
            doomed = alive & (bad_u[us] | bad_l[ls])
            if not doomed.any():
                break
            alive &= ~doomed
            du -= np.bincount(us[doomed], minlength=num_u)
            dl -= np.bincount(ls[doomed], minlength=num_l)
        query_degree = int(du[query]) if query_upper else int(dl[query])
        if query_degree < query_threshold:
            # The graph as it stood at the start of this round is the last
            # valid one: return the query's component inside it.
            return _edge_component(us, ls, previous, query_upper, query, num_u, num_l)
    # Unreachable for a well-formed input; same safe fall-back as the oracle.
    return live


def _binary_over_edges(
    us: np.ndarray,
    ls: np.ndarray,
    weight: np.ndarray,
    num_u: int,
    num_l: int,
    query_upper: bool,
    query: int,
    alpha: int,
    beta: int,
) -> np.ndarray:
    """Binary search over the distinct weights; array twin of ``scs_binary``.

    Contract: query component of the core at the largest weight threshold keeping the query alive; error if none does.
    """
    distinct = np.unique(weight)
    low, high = 0, int(distinct.shape[0]) - 1
    best = None
    while low <= high:
        mid = (low + high) // 2
        alive, du, dl = _edge_core(
            us, ls, num_u, num_l, weight >= distinct[mid], alpha, beta
        )
        survives = (int(du[query]) if query_upper else int(dl[query])) > 0
        if survives:
            best = alive
            low = mid + 1
        else:
            high = mid - 1
    if best is None:
        raise InvalidParameterError(
            f"the supplied edges are not a valid ({alpha},{beta})-community "
            "of the query vertex"
        )
    return _edge_component(us, ls, best, query_upper, query, num_u, num_l)


def _expand_over_edges(
    us: np.ndarray,
    ls: np.ndarray,
    weight: np.ndarray,
    num_u: int,
    num_l: int,
    query_upper: bool,
    query: int,
    alpha: int,
    beta: int,
    epsilon: float,
) -> np.ndarray:
    """Heaviest-first expansion; array twin of ``expand_over_pool``.

    The union-find itself runs as a python loop over the interned ids (its
    per-edge work is O(α(n)) and resists vectorisation), but each validation —
    the expensive part the geometric rule amortises — is the vectorised core
    fixpoint plus masked peel above.

    Contract: heaviest-first expansion with epsilon-geometric validation; the first component passing validation is the answer.
    """
    order = np.argsort(-weight, kind="stable")
    descending = weight[order]
    order_list = order.tolist()
    us_list, ls_list = us.tolist(), ls.tolist()
    total = int(order.shape[0])
    n = num_u + num_l
    query_vertex = query if query_upper else num_u + query
    query_threshold = alpha if query_upper else beta

    parent = list(range(n))
    size = [1] * n
    degree = [0] * n
    comp_edges = [0] * n
    comp_upper = [1 if v < num_u else 0 for v in range(n)]
    comp_lower = [0 if v < num_u else 1 for v in range(n)]
    comp_usat = [0] * n
    comp_lsat = [0] * n

    def find(v: int) -> int:
        root = v
        while parent[root] != root:
            root = parent[root]
        while parent[v] != root:
            parent[v], v = root, parent[v]
        return root

    def add_edge(e: int) -> None:
        a, b = us_list[e], num_u + ls_list[e]
        ra, rb = find(a), find(b)
        if ra == rb:
            comp_edges[ra] += 1
        else:
            if size[ra] < size[rb]:
                ra, rb = rb, ra
            parent[rb] = ra
            size[ra] += size[rb]
            comp_edges[ra] += comp_edges[rb] + 1
            comp_upper[ra] += comp_upper[rb]
            comp_lower[ra] += comp_lower[rb]
            comp_usat[ra] += comp_usat[rb]
            comp_lsat[ra] += comp_lsat[rb]
        for v in (a, b):
            degree[v] += 1
            threshold = alpha if v < num_u else beta
            if degree[v] == threshold:
                root = find(v)
                if v < num_u:
                    comp_usat[root] += 1
                else:
                    comp_lsat[root] += 1

    def validate(inserted: int) -> Optional[np.ndarray]:
        root = find(query_vertex)
        candidate = np.zeros(total, dtype=bool)
        members = [e for e in order_list[:inserted] if find(us_list[e]) == root]
        candidate[members] = True
        core, du, dl = _edge_core(us, ls, num_u, num_l, candidate, alpha, beta)
        if (int(du[query]) if query_upper else int(dl[query])) == 0:
            return None
        component = _edge_component(us, ls, core, query_upper, query, num_u, num_l)
        mask = np.zeros(total, dtype=bool)
        mask[component] = True
        return _peel_mask(
            us, ls, weight, num_u, num_l, mask, query_upper, query, alpha, beta
        )

    previous_checked_size = 0
    pos = 0
    while pos < total:
        batch_weight = descending[pos]
        before = comp_edges[find(query_vertex)] if degree[query_vertex] else -1
        run_end = pos + int(
            np.searchsorted(-descending[pos:], -batch_weight, side="right")
        )
        while pos < run_end:
            add_edge(order_list[pos])
            pos += 1
        if not degree[query_vertex]:
            continue
        root = find(query_vertex)
        component_edges = comp_edges[root]
        if component_edges == before:
            continue  # C* unchanged in this round.
        # Lemma 7 / saturation / query-degree pruning, as in the dict twin.
        if alpha * beta - alpha - beta > (
            component_edges - comp_upper[root] - comp_lower[root]
        ):
            continue
        if comp_usat[root] < beta or comp_lsat[root] < alpha:
            continue
        if degree[query_vertex] < query_threshold:
            continue
        if previous_checked_size and component_edges < previous_checked_size * epsilon:
            continue
        previous_checked_size = component_edges
        answer = validate(pos)
        if answer is not None:
            return answer
    if degree[query_vertex]:
        answer = validate(total)
        if answer is not None:
            return answer
    raise InvalidParameterError(
        f"the supplied edges contain no ({alpha},{beta})-community "
        "of the query vertex"
    )


def csr_significant_edges(
    src: np.ndarray,
    dst: np.ndarray,
    weight: np.ndarray,
    query_in_upper: bool,
    query_id: int,
    alpha: int,
    beta: int,
    method: str = "peel",
    epsilon: float = 2.0,
) -> np.ndarray:
    """Extract ``R(α,β)[q]`` from community edge arrays; return edge positions.

    The vectorised counterpart of
    :func:`repro.search.edge_scs.significant_edge_indices`: ``src`` / ``dst``
    / ``weight`` are the parallel edge arrays of one retrieved
    (α,β)-community (endpoint ids live in two independent spaces, as on the
    wire), ``query_id`` names the query vertex in the space selected by
    ``query_in_upper``.  Returns the ascending ``np.int64`` positions whose
    edges form the significant community.

    Contract: ascending positions of the query's significant (alpha,beta)-community edges, identical to the dict-backed scs oracle.
    """
    check_thresholds(alpha, beta)
    if method not in SCS_EDGE_METHODS:
        raise InvalidParameterError(
            f"unknown edge-search method {method!r}; expected one of {SCS_EDGE_METHODS}"
        )
    if method == "expand" and epsilon <= 1.0:
        raise InvalidParameterError("epsilon must be larger than 1")
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    weight = np.asarray(weight, dtype=np.float64)

    upper_ids, us = np.unique(src, return_inverse=True)
    lower_ids, ls = np.unique(dst, return_inverse=True)
    num_u, num_l = int(upper_ids.shape[0]), int(lower_ids.shape[0])
    pool = upper_ids if query_in_upper else lower_ids
    slot = int(np.searchsorted(pool, query_id))
    if slot >= pool.shape[0] or int(pool[slot]) != query_id:
        raise InvalidParameterError(
            f"query vertex {query_id!r} is not in the supplied community edges"
        )
    query = slot
    if np.unique(weight).shape[0] <= 1:
        # Single distinct weight: the community itself is the answer (the
        # same short-circuit every dict algorithm takes).
        return np.arange(src.shape[0], dtype=np.int64)
    if method == "peel":
        return _peel_mask(
            us, ls, weight, num_u, num_l, np.ones(src.shape[0], dtype=bool),
            query_in_upper, query, alpha, beta,
        )
    if method == "binary":
        return _binary_over_edges(
            us, ls, weight, num_u, num_l, query_in_upper, query, alpha, beta
        )
    return _expand_over_edges(
        us, ls, weight, num_u, num_l, query_in_upper, query, alpha, beta, epsilon
    )
