"""Peeling computation of the (α,β)-core (Definition 1).

The (α,β)-core of a bipartite graph is the maximal subgraph in which every
upper vertex has degree at least α and every lower vertex has degree at least
β.  It is computed by iteratively removing violating vertices until a fixed
point is reached — the classical peeling algorithm, linear in the graph size.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.graph.bipartite import BipartiteGraph, Side, Vertex
from repro.graph.views import induced_subgraph
from repro.utils.validation import check_thresholds

__all__ = ["abcore_vertices", "abcore_subgraph", "peel_to_core", "degree_threshold"]


def degree_threshold(side: Side, alpha: int, beta: int) -> int:
    """The minimum degree required of a vertex on ``side`` in the (α,β)-core."""
    return alpha if side is Side.UPPER else beta


def peel_to_core(
    degrees: Dict[Vertex, int],
    neighbors: Dict[Vertex, Iterable[Vertex]],
    alpha: int,
    beta: int,
    alive: Optional[Set[Vertex]] = None,
) -> Set[Vertex]:
    """Peel an adjacency snapshot down to the vertices of its (α,β)-core.

    ``degrees`` is mutated in place (degrees of removed vertices become
    meaningless).  ``neighbors`` maps every vertex to an iterable of its
    neighbours (only pairs where both endpoints are alive are considered).
    Returns the set of surviving vertices.
    """
    if alive is None:
        alive = set(degrees)
    queue: deque[Vertex] = deque(
        v for v in alive if degrees[v] < degree_threshold(v.side, alpha, beta)
    )
    in_queue: Set[Vertex] = set(queue)
    while queue:
        vertex = queue.popleft()
        in_queue.discard(vertex)
        if vertex not in alive:
            continue
        alive.discard(vertex)
        for nbr in neighbors[vertex]:
            if nbr not in alive:
                continue
            degrees[nbr] -= 1
            if (
                degrees[nbr] < degree_threshold(nbr.side, alpha, beta)
                and nbr not in in_queue
            ):
                queue.append(nbr)
                in_queue.add(nbr)
    return alive


def _adjacency_snapshot(
    graph: BipartiteGraph,
) -> Tuple[Dict[Vertex, int], Dict[Vertex, Tuple[Vertex, ...]]]:
    """Materialise degree and neighbour maps keyed by vertex handles."""
    degrees: Dict[Vertex, int] = {}
    neighbors: Dict[Vertex, Tuple[Vertex, ...]] = {}
    for vertex in graph.vertices():
        nbr_labels = graph.neighbors(vertex.side, vertex.label)
        other = vertex.side.other
        degrees[vertex] = len(nbr_labels)
        neighbors[vertex] = tuple(Vertex(other, label) for label in nbr_labels)
    return degrees, neighbors


def abcore_vertices(graph: BipartiteGraph, alpha: int, beta: int) -> Set[Vertex]:
    """Return the vertex set of the (α,β)-core of ``graph``."""
    check_thresholds(alpha, beta)
    degrees, neighbors = _adjacency_snapshot(graph)
    return peel_to_core(degrees, neighbors, alpha, beta)


def abcore_subgraph(graph: BipartiteGraph, alpha: int, beta: int) -> BipartiteGraph:
    """Return the (α,β)-core of ``graph`` as a new graph.

    The result can be empty (no vertices) when no subgraph satisfies the
    thresholds.
    """
    survivors = abcore_vertices(graph, alpha, beta)
    core = induced_subgraph(graph, survivors)
    core.name = f"{graph.name}:core({alpha},{beta})" if graph.name else f"core({alpha},{beta})"
    return core
