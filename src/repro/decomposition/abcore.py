"""Peeling computation of the (α,β)-core (Definition 1).

The (α,β)-core of a bipartite graph is the maximal subgraph in which every
upper vertex has degree at least α and every lower vertex has degree at least
β.  It is computed by iteratively removing violating vertices until a fixed
point is reached — the classical peeling algorithm, linear in the graph size.

Two engines implement the peeling.  The default dict backend walks the
label-level adjacency with a FIFO of :class:`Vertex` handles; the CSR backend
(``backend="csr"``) freezes the graph into
:class:`~repro.graph.csr.CSRBipartiteGraph` and runs the vectorised frontier
cascade of :mod:`repro.decomposition.csr_kernels`.  ``backend="auto"`` picks
CSR above :data:`~repro.graph.csr.AUTO_CSR_EDGE_THRESHOLD` edges.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.graph.bipartite import BipartiteGraph, Side, Vertex
from repro.graph.csr import resolve_backend
from repro.graph.views import induced_subgraph
from repro.utils.validation import check_thresholds

__all__ = ["abcore_vertices", "abcore_subgraph", "peel_to_core", "degree_threshold"]


def degree_threshold(side: Side, alpha: int, beta: int) -> int:
    """The minimum degree required of a vertex on ``side`` in the (α,β)-core."""
    return alpha if side is Side.UPPER else beta


def peel_to_core(
    degrees: Dict[Vertex, int],
    neighbors: Dict[Vertex, Iterable[Vertex]],
    alpha: int,
    beta: int,
    alive: Optional[Set[Vertex]] = None,
) -> Set[Vertex]:
    """Peel an adjacency snapshot down to the vertices of its (α,β)-core.

    ``degrees`` is mutated in place (degrees of removed vertices become
    meaningless).  ``neighbors`` maps every vertex to an iterable of its
    neighbours (only pairs where both endpoints are alive are considered).
    Returns the set of surviving vertices.
    """
    if alive is None:
        alive = set(degrees)
    queue: deque[Vertex] = deque(
        v for v in alive if degrees[v] < degree_threshold(v.side, alpha, beta)
    )
    in_queue: Set[Vertex] = set(queue)
    while queue:
        vertex = queue.popleft()
        in_queue.discard(vertex)
        if vertex not in alive:
            continue
        alive.discard(vertex)
        for nbr in neighbors[vertex]:
            if nbr not in alive:
                continue
            degrees[nbr] -= 1
            if (
                degrees[nbr] < degree_threshold(nbr.side, alpha, beta)
                and nbr not in in_queue
            ):
                queue.append(nbr)
                in_queue.add(nbr)
    return alive


def _adjacency_snapshot(
    graph: BipartiteGraph,
) -> Tuple[Dict[Vertex, int], Dict[Vertex, Tuple[Vertex, ...]]]:
    """Materialise degree and neighbour maps keyed by vertex handles."""
    degrees: Dict[Vertex, int] = {}
    neighbors: Dict[Vertex, Tuple[Vertex, ...]] = {}
    for vertex in graph.vertices():
        nbr_labels = graph.neighbors(vertex.side, vertex.label)
        other = vertex.side.other
        degrees[vertex] = len(nbr_labels)
        neighbors[vertex] = tuple(Vertex(other, label) for label in nbr_labels)
    return degrees, neighbors


def _abcore_vertices_csr(graph: BipartiteGraph, alpha: int, beta: int) -> Set[Vertex]:
    """CSR fast path: freeze once, peel with the vectorised cascade."""
    from repro.decomposition.csr_kernels import csr_abcore_masks
    from repro.graph.csr import freeze

    csr = freeze(graph)
    alive_upper, alive_lower = csr_abcore_masks(csr, alpha, beta)
    upper_handles = csr.upper_handles()
    lower_handles = csr.lower_handles()
    survivors = {upper_handles[i] for i in alive_upper.nonzero()[0].tolist()}
    survivors.update(lower_handles[i] for i in alive_lower.nonzero()[0].tolist())
    return survivors


def abcore_vertices(
    graph: BipartiteGraph, alpha: int, beta: int, backend: str = "auto"
) -> Set[Vertex]:
    """Return the vertex set of the (α,β)-core of ``graph``."""
    check_thresholds(alpha, beta)
    if resolve_backend(backend, graph) == "csr":
        return _abcore_vertices_csr(graph, alpha, beta)
    degrees, neighbors = _adjacency_snapshot(graph)
    return peel_to_core(degrees, neighbors, alpha, beta)


def abcore_subgraph(
    graph: BipartiteGraph, alpha: int, beta: int, backend: str = "auto"
) -> BipartiteGraph:
    """Return the (α,β)-core of ``graph`` as a new graph.

    The result can be empty (no vertices) when no subgraph satisfies the
    thresholds.
    """
    survivors = abcore_vertices(graph, alpha, beta, backend=backend)
    core = induced_subgraph(graph, survivors)
    core.name = f"{graph.name}:core({alpha},{beta})" if graph.name else f"core({alpha},{beta})"
    return core
