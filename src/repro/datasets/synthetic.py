"""Building one synthetic dataset from a declarative specification."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exceptions import DatasetError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import power_law_bipartite
from repro.graph.weights import apply_weights

__all__ = ["DatasetSpec", "build_synthetic_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Shape parameters of one synthetic dataset.

    The fields mirror what Table I of the paper reports per dataset: the layer
    sizes and edge count (scaled down), the degree skew on each layer (which
    drives δ, α_max and β_max), and the weight model used to label edges.
    ``paper_reference`` records the statistics of the original KONECT dataset
    so that reports can show the correspondence.
    """

    name: str
    num_upper: int
    num_lower: int
    num_edges: int
    exponent_upper: float = 0.9
    exponent_lower: float = 0.9
    weight_model: str = "UF"
    seed: int = 7
    description: str = ""
    paper_reference: Dict[str, float] = field(default_factory=dict)

    def scaled(self, scale: float) -> "DatasetSpec":
        """Return a copy with vertex and edge counts multiplied by ``scale``."""
        if scale <= 0:
            raise DatasetError("scale must be positive")
        return DatasetSpec(
            name=self.name,
            num_upper=max(4, int(self.num_upper * scale)),
            num_lower=max(4, int(self.num_lower * scale)),
            num_edges=max(8, int(self.num_edges * scale)),
            exponent_upper=self.exponent_upper,
            exponent_lower=self.exponent_lower,
            weight_model=self.weight_model,
            seed=self.seed,
            description=self.description,
            paper_reference=self.paper_reference,
        )


def build_synthetic_dataset(spec: DatasetSpec, seed: Optional[int] = None) -> BipartiteGraph:
    """Materialise the graph described by ``spec``.

    The generator first lays down a skewed bipartite topology and then labels
    the edges with the spec's weight model; the result is deterministic for a
    fixed seed.
    """
    effective_seed = spec.seed if seed is None else seed
    graph = power_law_bipartite(
        spec.num_upper,
        spec.num_lower,
        spec.num_edges,
        exponent_upper=spec.exponent_upper,
        exponent_lower=spec.exponent_lower,
        seed=effective_seed,
        name=spec.name,
    )
    apply_weights(graph, spec.weight_model, seed=effective_seed + 1)
    return graph
