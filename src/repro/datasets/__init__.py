"""Dataset registry and synthetic dataset builders.

The paper evaluates on 11 KONECT datasets of up to 137M edges.  Those cannot
be redistributed or downloaded in this offline reproduction, so the registry
exposes synthetic graphs whose *shape* (layer imbalance, degree skew, density,
weight model) mirrors each of the originals at a laptop-friendly scale — see
``DESIGN.md`` for the substitution rationale.  Users with the real data can
load it through :mod:`repro.graph.io` and run the identical pipeline.
"""

from repro.datasets.movielens import MovieLensData, movielens_like
from repro.datasets.registry import DATASETS, DatasetSpec, dataset_names, load_dataset
from repro.datasets.synthetic import build_synthetic_dataset

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "dataset_names",
    "load_dataset",
    "build_synthetic_dataset",
    "MovieLensData",
    "movielens_like",
]
