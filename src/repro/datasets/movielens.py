"""A MovieLens-style user-movie rating graph for the effectiveness study.

The paper's Section V-B works on the MovieLens 25M dataset: users rate movies
from 0.5 to 5.0 stars and every movie carries genre labels; the experiments
restrict the graph to comedy movies, plant a query user and compare community
models.  This module generates a scaled synthetic equivalent with the features
those experiments rely on:

* a *planted fan club*: a block of users who rate many comedy movies highly
  (these should be recovered by the significant (α,β)-community),
* *casual users* who also rate many comedies — enough to stay inside the
  (α,β)-core and the k-bitruss — but with mediocre ratings, so they dilute the
  quality of the structure-only communities exactly as in Figure 6,
* *background* users and movies of other genres.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Set

from repro.graph.bipartite import BipartiteGraph, Side, Vertex, upper

__all__ = ["MovieLensData", "movielens_like", "genre_subgraph"]

GOOD_RATINGS = (4.5, 5.0)
MIXED_RATINGS = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5)


@dataclass
class MovieLensData:
    """The synthetic user-movie network plus the metadata the experiments use."""

    graph: BipartiteGraph
    genres: Dict[Hashable, str]
    fan_users: List[Hashable]
    fan_movies: List[Hashable]
    query: Vertex = field(default_factory=lambda: upper("fan_user_0"))

    def movies_of_genre(self, genre: str) -> Set[Hashable]:
        return {movie for movie, g in self.genres.items() if g == genre}


def movielens_like(
    num_fans: int = 60,
    num_fan_movies: int = 50,
    num_casual_users: int = 300,
    num_casual_movies: int = 60,
    num_other_movies: int = 80,
    fan_density: float = 0.85,
    casual_ratings_per_user: int = 18,
    fan_movie_fraction: float = 0.08,
    seed: int = 2021,
) -> MovieLensData:
    """Generate the synthetic rating graph.

    The planted fan club (``fan_user_*`` x ``fan_movie_*``) is dense and rated
    4.5-5.0.  Casual users rate ``casual_ratings_per_user`` comedies each —
    mostly popular ``comedy_movie_*`` titles plus a ``fan_movie_fraction``
    share of fan movies — with mediocre ratings (0.5-3.5), so they satisfy the
    degree constraints of the (α,β)-core without being genuine fans.
    Other-genre movies receive a sprinkling of background ratings.
    """
    rng = random.Random(seed)
    graph = BipartiteGraph(name="movielens-like")
    genres: Dict[Hashable, str] = {}

    fan_users = [f"fan_user_{i}" for i in range(num_fans)]
    fan_movies = [f"fan_movie_{j}" for j in range(num_fan_movies)]
    casual_users = [f"casual_user_{i}" for i in range(num_casual_users)]
    casual_movies = [f"comedy_movie_{j}" for j in range(num_casual_movies)]
    other_movies = [f"drama_movie_{j}" for j in range(num_other_movies)]

    for movie in fan_movies + casual_movies:
        genres[movie] = "comedy"
    for movie in other_movies:
        genres[movie] = "drama"

    # 1. The planted fan club: dense block of high ratings.
    for i, user in enumerate(fan_users):
        rated = 0
        for j, movie in enumerate(fan_movies):
            if rng.random() <= fan_density:
                graph.add_edge(user, movie, rng.choice(GOOD_RATINGS))
                rated += 1
        if rated == 0:
            graph.add_edge(user, fan_movies[i % num_fan_movies], rng.choice(GOOD_RATINGS))

    # 2. Casual users: many ratings on popular comedies (plus the occasional
    # fan movie) with mediocre scores; they keep the (α,β)-core large while
    # diluting its quality — the effect Figure 6 of the paper highlights.
    fan_quota = max(1, int(round(casual_ratings_per_user * fan_movie_fraction)))
    casual_quota = max(1, casual_ratings_per_user - fan_quota)
    for user in casual_users:
        chosen = rng.sample(casual_movies, min(casual_quota, len(casual_movies)))
        chosen += rng.sample(fan_movies, min(fan_quota, len(fan_movies)))
        for movie in chosen:
            graph.add_edge(user, movie, rng.choice(MIXED_RATINGS))

    # 3. Background: every user occasionally rates other-genre movies, and
    # other-genre movies receive ratings so they are non-trivial vertices.
    everyone = fan_users + casual_users
    for movie in other_movies:
        raters = rng.sample(everyone, min(6, len(everyone)))
        for user in raters:
            graph.add_edge(user, movie, rng.choice(MIXED_RATINGS))

    return MovieLensData(
        graph=graph,
        genres=genres,
        fan_users=fan_users,
        fan_movies=fan_movies,
        query=Vertex(Side.UPPER, fan_users[0]),
    )


def genre_subgraph(data: MovieLensData, genre: str) -> BipartiteGraph:
    """The subgraph formed by ratings on movies of one genre (e.g. ``"comedy"``)."""
    movies = data.movies_of_genre(genre)
    result = BipartiteGraph(name=f"{data.graph.name}:{genre}")
    for movie in movies:
        if not data.graph.has_vertex(Side.LOWER, movie):
            continue
        for user, weight in data.graph.neighbors(Side.LOWER, movie).items():
            result.add_edge(user, movie, weight)
    return result
