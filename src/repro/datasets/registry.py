"""The dataset registry: scaled stand-ins for the paper's 11 KONECT graphs.

Every entry keeps the original dataset's qualitative shape — which layer is
larger, how skewed the degree distributions are, which weight model labels the
edges — at a scale (thousands of edges instead of millions) where the whole
experiment suite runs in pure Python within minutes.  ``paper_reference``
carries the original Table I statistics for reporting side by side.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.datasets.synthetic import DatasetSpec, build_synthetic_dataset
from repro.exceptions import DatasetError
from repro.graph.bipartite import BipartiteGraph

__all__ = ["DATASETS", "dataset_names", "load_dataset", "get_spec"]


def _spec(
    name: str,
    num_upper: int,
    num_lower: int,
    num_edges: int,
    exponent_upper: float,
    exponent_lower: float,
    weight_model: str,
    seed: int,
    description: str,
    reference: Dict[str, float],
) -> DatasetSpec:
    return DatasetSpec(
        name=name,
        num_upper=num_upper,
        num_lower=num_lower,
        num_edges=num_edges,
        exponent_upper=exponent_upper,
        exponent_lower=exponent_lower,
        weight_model=weight_model,
        seed=seed,
        description=description,
        paper_reference=reference,
    )


#: Scaled stand-ins for the 11 datasets of Table I, keyed by the paper's short name.
DATASETS: Dict[str, DatasetSpec] = {
    "BS": _spec(
        "BS", 300, 700, 1800, 0.95, 0.55, "UF", 11,
        "Bookcrossing: user-book ratings, larger lower layer",
        {"|E|": 433_000, "|U|": 77_800, "|L|": 186_000, "delta": 13},
    ),
    "GH": _spec(
        "GH", 260, 520, 1900, 0.6, 0.9, "UF", 13,
        "Github: developer-project memberships",
        {"|E|": 440_000, "|U|": 56_500, "|L|": 121_000, "delta": 39},
    ),
    "SO": _spec(
        "SO", 900, 200, 2600, 0.85, 0.85, "UF", 17,
        "StackOverflow: user-post favourites, many upper vertices",
        {"|E|": 1_300_000, "|U|": 545_000, "|L|": 96_600, "delta": 22},
    ),
    "LS": _spec(
        "LS", 60, 1500, 4200, 0.35, 0.95, "UF", 19,
        "Lastfm: tiny upper layer, very dense core",
        {"|E|": 4_410_000, "|U|": 992, "|L|": 1_080_000, "delta": 164},
    ),
    "DT": _spec(
        "DT", 1600, 40, 4600, 0.95, 0.3, "RW", 23,
        "Discogs: tiny lower layer; weights from random walk with restart",
        {"|E|": 5_740_000, "|U|": 1_620_000, "|L|": 383, "delta": 73},
    ),
    "AR": _spec(
        "AR", 1400, 900, 4800, 0.9, 0.8, "UF", 29,
        "Amazon ratings: balanced layers, moderate skew",
        {"|E|": 5_740_000, "|U|": 2_150_000, "|L|": 1_230_000, "delta": 26},
    ),
    "PA": _spec(
        "PA", 900, 2300, 3800, 0.7, 0.55, "RW", 31,
        "DBLP author-paper: sparse, small degeneracy",
        {"|E|": 8_650_000, "|U|": 1_430_000, "|L|": 4_000_000, "delta": 10},
    ),
    "ML": _spec(
        "ML", 450, 220, 7200, 0.8, 0.75, "SK", 37,
        "MovieLens: dense rating matrix with skewed ratings",
        {"|E|": 25_000_000, "|U|": 162_000, "|L|": 59_000, "delta": 636},
    ),
    "DUI": _spec(
        "DUI", 700, 2600, 8200, 0.9, 0.95, "UF", 41,
        "Delicious user-item: large and skewed",
        {"|E|": 102_000_000, "|U|": 833_000, "|L|": 33_800_000, "delta": 183},
    ),
    "EN": _spec(
        "EN", 1000, 3000, 9400, 1.0, 0.95, "UF", 43,
        "Wikipedia-en: extremely skewed upper hub degrees",
        {"|E|": 122_000_000, "|U|": 3_820_000, "|L|": 21_500_000, "delta": 254},
    ),
    "DTI": _spec(
        "DTI", 1300, 3200, 9000, 0.95, 0.9, "UF", 47,
        "Delicious tag-item: large, hub-heavy",
        {"|E|": 137_000_000, "|U|": 4_510_000, "|L|": 33_800_000, "delta": 180},
    ),
}


def dataset_names() -> List[str]:
    """Names of all registered datasets in the paper's order."""
    return list(DATASETS)


def get_spec(name: str) -> DatasetSpec:
    """Return the specification of a registered dataset."""
    try:
        return DATASETS[name.upper()]
    except KeyError as exc:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        ) from exc


def load_dataset(
    name: str,
    scale: float = 1.0,
    seed: Optional[int] = None,
) -> BipartiteGraph:
    """Build the synthetic stand-in for dataset ``name``.

    ``scale`` multiplies vertex and edge counts (0.25 gives a quick smoke-test
    variant; values above 1 stress-test the algorithms).
    """
    spec = get_spec(name)
    if scale != 1.0:
        spec = spec.scaled(scale)
    return build_synthetic_dataset(spec, seed=seed)
