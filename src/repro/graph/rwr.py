"""Random walk with restart (RWR) on bipartite graphs.

The paper derives edge weights for the unweighted datasets (``DT`` and ``PA``)
from node relevance scores computed with the random walk with restart model of
Tong et al. (ICDM 2006).  This module implements that substrate: a power
iteration computing, for a restart vertex ``q``, the stationary probability of
a walk that at each step either restarts at ``q`` (with probability
``restart_prob``) or moves to a uniformly random neighbour.

:func:`rwr_scores` returns the score vector for one restart vertex and
:func:`rwr_edge_weights` turns scores into edge weights (the paper uses node
relevance between the two endpoints; we use the symmetric combination
``score(u) + score(v)`` rescaled to a target range).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph, Side, Vertex

__all__ = ["rwr_scores", "rwr_edge_weights"]


def rwr_scores(
    graph: BipartiteGraph,
    restart: Vertex,
    restart_prob: float = 0.15,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
) -> Dict[Vertex, float]:
    """Compute random-walk-with-restart scores for every vertex.

    Parameters
    ----------
    graph:
        The bipartite graph to walk on.
    restart:
        The restart vertex ``q``.
    restart_prob:
        Probability of teleporting back to ``q`` at each step (``c`` in the
        original paper); must lie in ``(0, 1)``.
    max_iterations, tolerance:
        Power iteration stops when the L1 change drops below ``tolerance`` or
        after ``max_iterations`` rounds.
    """
    if not 0.0 < restart_prob < 1.0:
        raise InvalidParameterError("restart_prob must lie strictly between 0 and 1")
    if not graph.has_vertex(restart.side, restart.label):
        raise InvalidParameterError(f"restart vertex {restart!r} is not in the graph")

    scores: Dict[Vertex, float] = {vertex: 0.0 for vertex in graph.vertices()}
    scores[restart] = 1.0

    for _ in range(max_iterations):
        updated: Dict[Vertex, float] = {vertex: 0.0 for vertex in scores}
        for vertex, mass in scores.items():
            if mass == 0.0:
                continue
            degree = graph.degree(vertex.side, vertex.label)
            if degree == 0:
                # Dangling mass teleports home.
                updated[restart] += (1.0 - restart_prob) * mass
                continue
            share = (1.0 - restart_prob) * mass / degree
            other = vertex.side.other
            for nbr in graph.neighbors(vertex.side, vertex.label):
                updated[Vertex(other, nbr)] += share
        updated[restart] += restart_prob
        delta = sum(abs(updated[v] - scores[v]) for v in scores)
        scores = updated
        if delta < tolerance:
            break
    return scores


def rwr_edge_weights(
    graph: BipartiteGraph,
    restart: Optional[Vertex] = None,
    restart_prob: float = 0.15,
    weight_range: Tuple[float, float] = (1.0, 5.0),
    max_iterations: int = 50,
) -> Dict[Tuple[Hashable, Hashable], float]:
    """Derive an edge-weight map from RWR relevance scores.

    If ``restart`` is omitted the highest-degree upper vertex is used, which
    mirrors the paper's use of a representative seed for weight generation.
    Each edge ``(u, v)`` receives ``score(u) + score(v)``, linearly rescaled to
    ``weight_range``.
    """
    if graph.is_empty():
        return {}
    if restart is None:
        hub = max(graph.upper_labels(), key=lambda label: graph.degree(Side.UPPER, label))
        restart = Vertex(Side.UPPER, hub)
    scores = rwr_scores(
        graph, restart, restart_prob=restart_prob, max_iterations=max_iterations
    )
    raw: Dict[Tuple[Hashable, Hashable], float] = {}
    for u, v, _ in graph.edges():
        raw[(u, v)] = scores[Vertex(Side.UPPER, u)] + scores[Vertex(Side.LOWER, v)]
    low, high = min(raw.values()), max(raw.values())
    target_low, target_high = weight_range
    span = high - low
    weights: Dict[Tuple[Hashable, Hashable], float] = {}
    for edge, value in raw.items():
        if span == 0.0:
            weights[edge] = (target_low + target_high) / 2.0
        else:
            weights[edge] = target_low + (value - low) / span * (target_high - target_low)
    return weights
