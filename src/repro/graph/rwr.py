"""Random walk with restart (RWR) on bipartite graphs.

The paper derives edge weights for the unweighted datasets (``DT`` and ``PA``)
from node relevance scores computed with the random walk with restart model of
Tong et al. (ICDM 2006).  This module implements that substrate: a power
iteration computing, for a restart vertex ``q``, the stationary probability of
a walk that at each step either restarts at ``q`` (with probability
``restart_prob``) or moves to a uniformly random neighbour.

:func:`rwr_scores` returns the score vector for one restart vertex and
:func:`rwr_edge_weights` turns scores into edge weights (the paper uses node
relevance between the two endpoints; we use the symmetric combination
``score(u) + score(v)`` rescaled to a target range).

Two engines share the same update rule: the pure-python power iteration walks
the dict adjacency in a canonical (``repr``-sorted) vertex order, so the same
graph loaded in any edge order produces bit-identical scores; the CSR engine
(``backend="csr"``, or ``"auto"`` on large graphs with numpy installed)
freezes the graph once and runs every iteration as a handful of vectorised
gathers and ``bincount`` scatter-adds, which is what makes deriving weights
for 100k-edge benchmark graphs cheap.  The two engines agree to float
round-off (their summation orders differ); each engine is individually
deterministic for a given graph.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph, Side, Vertex
from repro.graph.csr import HAS_NUMPY, CSRBipartiteGraph, resolve_backend

if HAS_NUMPY:  # pragma: no branch - trivial import guard
    import numpy as np
else:  # pragma: no cover - environment without numpy
    np = None  # type: ignore[assignment]

__all__ = ["rwr_scores", "rwr_edge_weights"]


def _check_restart(graph: BipartiteGraph, restart: Vertex, restart_prob: float) -> None:
    if not 0.0 < restart_prob < 1.0:
        raise InvalidParameterError("restart_prob must lie strictly between 0 and 1")
    if not graph.has_vertex(restart.side, restart.label):
        raise InvalidParameterError(f"restart vertex {restart!r} is not in the graph")


def _dict_scores(
    graph: BipartiteGraph,
    restart: Vertex,
    restart_prob: float,
    max_iterations: int,
    tolerance: float,
) -> Dict[Vertex, float]:
    """Pure-python power iteration over the dict adjacency.

    Vertices are visited in ``repr``-sorted order, which pins the float
    accumulation order: two loads of the same graph with shuffled edge lists
    produce bit-identical score maps.
    """
    ordered: List[Vertex] = sorted(graph.vertices(), key=repr)
    scores: Dict[Vertex, float] = {vertex: 0.0 for vertex in ordered}
    scores[restart] = 1.0

    for _ in range(max_iterations):
        updated: Dict[Vertex, float] = {vertex: 0.0 for vertex in ordered}
        for vertex in ordered:
            mass = scores[vertex]
            if mass == 0.0:
                continue
            degree = graph.degree(vertex.side, vertex.label)
            if degree == 0:
                # Dangling mass teleports home.
                updated[restart] += (1.0 - restart_prob) * mass
                continue
            share = (1.0 - restart_prob) * mass / degree
            other = vertex.side.other
            for nbr in sorted(graph.neighbors(vertex.side, vertex.label), key=repr):
                updated[Vertex(other, nbr)] += share
        updated[restart] += restart_prob
        delta = sum(abs(updated[v] - scores[v]) for v in ordered)
        scores = updated
        if delta < tolerance:
            break
    return scores


def _csr_scores(
    csr: "CSRBipartiteGraph",
    restart: Vertex,
    restart_prob: float,
    max_iterations: int,
    tolerance: float,
) -> "Tuple[np.ndarray, np.ndarray]":
    """Vectorised power iteration over the frozen CSR adjacency.

    Returns ``(upper_scores, lower_scores)`` float arrays indexed by the CSR's
    interned local ids.  Each round is two ``repeat`` gathers and two
    ``bincount`` scatter-adds — O(E) with numpy constants instead of python
    dict constants, which is what lets weight derivation keep up with the
    array-resident index builds.
    """
    num_upper = len(csr.upper_labels)
    num_lower = len(csr.lower_labels)
    deg_u = np.diff(csr.u_indptr)
    deg_l = np.diff(csr.l_indptr)
    keep = 1.0 - restart_prob

    s_u = np.zeros(num_upper, dtype=np.float64)
    s_l = np.zeros(num_lower, dtype=np.float64)
    if restart.side is Side.UPPER:
        restart_arr, restart_id = s_u, csr._upper_ids[restart.label]
    else:
        restart_arr, restart_id = s_l, csr._lower_ids[restart.label]
    restart_arr[restart_id] = 1.0

    dangling_u = deg_u == 0
    dangling_l = deg_l == 0
    for _ in range(max_iterations):
        share_u = np.divide(
            keep * s_u, deg_u, out=np.zeros_like(s_u), where=~dangling_u
        )
        share_l = np.divide(
            keep * s_l, deg_l, out=np.zeros_like(s_l), where=~dangling_l
        )
        new_l = np.bincount(
            csr.u_indices, weights=np.repeat(share_u, deg_u), minlength=num_lower
        )
        new_u = np.bincount(
            csr.l_indices, weights=np.repeat(share_l, deg_l), minlength=num_upper
        )
        home = restart_prob + keep * (
            float(s_u[dangling_u].sum()) + float(s_l[dangling_l].sum())
        )
        if restart.side is Side.UPPER:
            new_u[restart_id] += home
        else:
            new_l[restart_id] += home
        delta = float(np.abs(new_u - s_u).sum() + np.abs(new_l - s_l).sum())
        s_u, s_l = new_u, new_l
        if delta < tolerance:
            break
    return s_u, s_l


def rwr_scores(
    graph: BipartiteGraph,
    restart: Vertex,
    restart_prob: float = 0.15,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
    backend: str = "auto",
) -> Dict[Vertex, float]:
    """Compute random-walk-with-restart scores for every vertex.

    Parameters
    ----------
    graph:
        The bipartite graph to walk on.
    restart:
        The restart vertex ``q``.
    restart_prob:
        Probability of teleporting back to ``q`` at each step (``c`` in the
        original paper); must lie in ``(0, 1)``.
    max_iterations, tolerance:
        Power iteration stops when the L1 change drops below ``tolerance`` or
        after ``max_iterations`` rounds.
    backend:
        ``"dict"`` for the pure-python iteration, ``"csr"`` for the vectorised
        one over a frozen CSR adjacency, ``"auto"`` (default) to pick CSR on
        large graphs when numpy is available.  Both engines implement the
        same update rule and agree to float round-off.
    """
    _check_restart(graph, restart, restart_prob)
    if resolve_backend(backend, graph) == "csr":
        csr = CSRBipartiteGraph.freeze(graph)
        s_u, s_l = _csr_scores(csr, restart, restart_prob, max_iterations, tolerance)
        scores = {
            Vertex(Side.UPPER, label): float(s_u[i])
            for i, label in enumerate(csr.upper_labels)
        }
        scores.update(
            (Vertex(Side.LOWER, label), float(s_l[j]))
            for j, label in enumerate(csr.lower_labels)
        )
        return scores
    return _dict_scores(graph, restart, restart_prob, max_iterations, tolerance)


def rwr_edge_weights(
    graph: BipartiteGraph,
    restart: Optional[Vertex] = None,
    restart_prob: float = 0.15,
    weight_range: Tuple[float, float] = (1.0, 5.0),
    max_iterations: int = 50,
    backend: str = "auto",
) -> Dict[Tuple[Hashable, Hashable], float]:
    """Derive an edge-weight map from RWR relevance scores.

    If ``restart`` is omitted the highest-degree upper vertex is used, which
    mirrors the paper's use of a representative seed for weight generation;
    degree ties are broken deterministically on the label's ``repr``, so the
    same graph loaded in any edge order selects the same hub (and therefore
    derives the same weights and the same index).  Each edge ``(u, v)``
    receives ``score(u) + score(v)``, linearly rescaled to ``weight_range``.
    """
    if graph.is_empty():
        return {}
    if restart is None:
        top_degree = max(
            graph.degree(Side.UPPER, label) for label in graph.upper_labels()
        )
        hub = min(
            (
                label
                for label in graph.upper_labels()
                if graph.degree(Side.UPPER, label) == top_degree
            ),
            key=repr,
        )
        restart = Vertex(Side.UPPER, hub)
    scores = rwr_scores(
        graph,
        restart,
        restart_prob=restart_prob,
        max_iterations=max_iterations,
        backend=backend,
    )
    raw: Dict[Tuple[Hashable, Hashable], float] = {}
    for u, v, _ in graph.edges():
        raw[(u, v)] = scores[Vertex(Side.UPPER, u)] + scores[Vertex(Side.LOWER, v)]
    low, high = min(raw.values()), max(raw.values())
    target_low, target_high = weight_range
    span = high - low
    weights: Dict[Tuple[Hashable, Hashable], float] = {}
    for edge, value in raw.items():
        if span == 0.0:
            weights[edge] = (target_low + target_high) / 2.0
        else:
            weights[edge] = target_low + (value - low) / span * (target_high - target_low)
    return weights
