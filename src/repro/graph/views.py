"""Subgraph extraction and connectivity helpers.

These free functions build *new* :class:`~repro.graph.bipartite.BipartiteGraph`
objects from an existing one: induced subgraphs, edge subgraphs, connected
components and weight-threshold subgraphs.  They are the building blocks of
the online (index-free) query algorithms and of the search algorithms in
:mod:`repro.search`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

from repro.exceptions import VertexNotFoundError
from repro.graph.bipartite import BipartiteGraph, Side, Vertex

__all__ = [
    "induced_subgraph",
    "edge_subgraph",
    "connected_component",
    "connected_components",
    "component_containing",
    "weight_threshold_subgraph",
]


def induced_subgraph(graph: BipartiteGraph, vertices: Iterable[Vertex]) -> BipartiteGraph:
    """Return the subgraph induced by ``vertices`` (edges with both ends inside)."""
    wanted: Set[Vertex] = set(vertices)
    upper_wanted = {v.label for v in wanted if v.side is Side.UPPER}
    lower_wanted = {v.label for v in wanted if v.side is Side.LOWER}
    result = BipartiteGraph(name=graph.name)
    for label in upper_wanted:
        if graph.has_vertex(Side.UPPER, label):
            result.add_vertex(Side.UPPER, label)
    for label in lower_wanted:
        if graph.has_vertex(Side.LOWER, label):
            result.add_vertex(Side.LOWER, label)
    for label in upper_wanted:
        if not graph.has_vertex(Side.UPPER, label):
            continue
        for nbr, weight in graph.neighbors(Side.UPPER, label).items():
            if nbr in lower_wanted:
                result.add_edge(label, nbr, weight)
    return result


def edge_subgraph(
    graph: BipartiteGraph,
    edges: Iterable[Tuple[Hashable, Hashable]],
    name: str = "",
) -> BipartiteGraph:
    """Return the subgraph formed by the given ``(upper, lower)`` edges.

    Edge weights are copied from ``graph``.
    """
    result = BipartiteGraph(name=name or graph.name)
    for u, v in edges:
        result.add_edge(u, v, graph.weight(u, v))
    return result


def connected_component(graph: BipartiteGraph, start: Vertex) -> BipartiteGraph:
    """Return the connected component of ``start`` as a new graph."""
    vertices = graph.connected_component_vertices(start)
    return induced_subgraph(graph, vertices)


def component_containing(graph: BipartiteGraph, start: Vertex) -> Set[Vertex]:
    """Return the vertex set of the component containing ``start``."""
    return graph.connected_component_vertices(start)


def connected_components(graph: BipartiteGraph) -> Iterator[Set[Vertex]]:
    """Yield the vertex sets of all connected components of ``graph``."""
    seen: Set[Vertex] = set()
    for vertex in graph.vertices():
        if vertex in seen:
            continue
        component = graph.connected_component_vertices(vertex)
        seen.update(component)
        yield component


def weight_threshold_subgraph(graph: BipartiteGraph, threshold: float) -> BipartiteGraph:
    """Return the subgraph formed by all edges with weight >= ``threshold``."""
    result = BipartiteGraph(name=graph.name)
    for u, v, w in graph.edges():
        if w >= threshold:
            result.add_edge(u, v, w)
    return result
