"""Synthetic bipartite graph generators.

The paper evaluates on 11 large KONECT datasets that we cannot download in an
offline environment, so the dataset registry (:mod:`repro.datasets.registry`)
builds scaled-down synthetic graphs with comparable *shape*: skewed degree
distributions, asymmetric layer sizes and dense cores.  The generators here
are the raw building blocks:

* :func:`random_bipartite` — Erdos-Renyi style G(n_u, n_l, p or m).
* :func:`power_law_bipartite` — configuration-model style graph with Zipfian
  degree distributions on both layers (the typical shape of user-item data).
* :func:`planted_community_graph` — a dense planted block embedded in a sparse
  noisy background, used by the effectiveness experiments (Fig. 6, Table II).
* :func:`paper_example_graph` — the exact graph of Figure 2 of the paper,
  handy for unit tests and the quickstart example.
* :func:`star_heavy_graph` — graph with a few very high degree hubs, the case
  that makes the basic indexes blow up (Section III-B motivation).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.graph.bipartite import Side

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph

__all__ = [
    "random_bipartite",
    "power_law_bipartite",
    "planted_community_graph",
    "paper_example_graph",
    "star_heavy_graph",
    "complete_bipartite",
]


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


def complete_bipartite(
    num_upper: int,
    num_lower: int,
    weight: float = 1.0,
    upper_prefix: str = "u",
    lower_prefix: str = "v",
) -> BipartiteGraph:
    """Return the complete bipartite graph ``K_{num_upper, num_lower}``."""
    graph = BipartiteGraph(name=f"K_{num_upper}_{num_lower}")
    for i in range(num_upper):
        for j in range(num_lower):
            graph.add_edge(f"{upper_prefix}{i}", f"{lower_prefix}{j}", weight)
    return graph


def random_bipartite(
    num_upper: int,
    num_lower: int,
    num_edges: int,
    seed: Optional[int] = None,
    upper_prefix: str = "u",
    lower_prefix: str = "v",
) -> BipartiteGraph:
    """Return a uniform random bipartite graph with ``num_edges`` distinct edges."""
    if num_edges > num_upper * num_lower:
        raise InvalidParameterError(
            f"cannot place {num_edges} edges in a {num_upper}x{num_lower} bipartite graph"
        )
    rng = _rng(seed)
    graph = BipartiteGraph(name="random")
    chosen: set[Tuple[int, int]] = set()
    while len(chosen) < num_edges:
        pair = (rng.randrange(num_upper), rng.randrange(num_lower))
        if pair in chosen:
            continue
        chosen.add(pair)
        graph.add_edge(f"{upper_prefix}{pair[0]}", f"{lower_prefix}{pair[1]}", 1.0)
    return graph


def _zipf_degrees(count: int, total: int, exponent: float, rng: random.Random) -> List[int]:
    """Draw ``count`` degrees summing approximately to ``total`` from a Zipf shape."""
    raw = [1.0 / (i + 1) ** exponent for i in range(count)]
    scale = total / sum(raw)
    degrees = [max(1, int(round(value * scale))) for value in raw]
    # Adjust the head so the total matches exactly; keep every degree >= 1.
    diff = total - sum(degrees)
    index = 0
    while diff != 0 and count:
        step = 1 if diff > 0 else -1
        if degrees[index % count] + step >= 1:
            degrees[index % count] += step
            diff -= step
        index += 1
    rng.shuffle(degrees)
    return degrees


def power_law_bipartite(
    num_upper: int,
    num_lower: int,
    num_edges: int,
    exponent_upper: float = 1.0,
    exponent_lower: float = 1.0,
    seed: Optional[int] = None,
    upper_prefix: str = "u",
    lower_prefix: str = "v",
    name: str = "power-law",
) -> BipartiteGraph:
    """Configuration-model style generator with Zipfian degree sequences.

    Multi-edges produced by the stub matching are collapsed and then
    compensated for by degree-biased rejection sampling, so the final edge
    count matches ``num_edges`` whenever the requested density allows it (and
    falls slightly short only on extremely dense parameterisations).
    """
    if num_upper < 1 or num_lower < 1 or num_edges < 1:
        raise InvalidParameterError("graph dimensions must be positive")
    if num_edges > num_upper * num_lower:
        raise InvalidParameterError(
            f"cannot place {num_edges} distinct edges in a "
            f"{num_upper}x{num_lower} bipartite graph"
        )
    rng = _rng(seed)
    upper_degrees = _zipf_degrees(num_upper, num_edges, exponent_upper, rng)
    lower_degrees = _zipf_degrees(num_lower, num_edges, exponent_lower, rng)

    upper_stubs: List[int] = []
    for index, degree in enumerate(upper_degrees):
        upper_stubs.extend([index] * degree)
    lower_stubs: List[int] = []
    for index, degree in enumerate(lower_degrees):
        lower_stubs.extend([index] * degree)
    rng.shuffle(upper_stubs)
    rng.shuffle(lower_stubs)

    graph = BipartiteGraph(name=name)
    for u, v in zip(upper_stubs, lower_stubs):
        graph.add_edge(f"{upper_prefix}{u}", f"{lower_prefix}{v}", 1.0)

    # Stub matching collapses multi-edges; top the graph back up to the target
    # count by sampling endpoints proportionally to the degree sequences.
    attempts = 0
    max_attempts = 30 * num_edges
    while graph.num_edges < num_edges and attempts < max_attempts:
        attempts += 1
        u = upper_stubs[rng.randrange(len(upper_stubs))]
        v = lower_stubs[rng.randrange(len(lower_stubs))]
        u_label, v_label = f"{upper_prefix}{u}", f"{lower_prefix}{v}"
        if not graph.has_edge(u_label, v_label):
            graph.add_edge(u_label, v_label, 1.0)
    return graph


def planted_community_graph(
    community_upper: int,
    community_lower: int,
    background_upper: int,
    background_lower: int,
    background_edges: int,
    community_density: float = 0.9,
    bridge_edges: int = 10,
    seed: Optional[int] = None,
    name: str = "planted",
) -> Tuple[BipartiteGraph, List[Hashable], List[Hashable]]:
    """Embed a dense community inside a sparse background graph.

    Returns the graph plus the labels of the planted upper / lower vertices so
    the effectiveness experiments can measure precision-style statistics.
    Planted vertices are named ``cu*`` / ``cv*``; background vertices ``bu*`` /
    ``bv*``.  ``bridge_edges`` random edges connect the two regions so the
    graph has a single giant component.
    """
    rng = _rng(seed)
    graph = BipartiteGraph(name=name)
    planted_upper = [f"cu{i}" for i in range(community_upper)]
    planted_lower = [f"cv{j}" for j in range(community_lower)]

    for i, u in enumerate(planted_upper):
        for j, v in enumerate(planted_lower):
            if rng.random() <= community_density:
                graph.add_edge(u, v, 1.0)
    # Guarantee each planted vertex has at least one edge.
    for i, u in enumerate(planted_upper):
        if not graph.has_vertex(*_upper_key(u)) or graph.degree(*_upper_key(u)) == 0:
            graph.add_edge(u, planted_lower[i % community_lower], 1.0)
    for j, v in enumerate(planted_lower):
        if not graph.has_vertex(*_lower_key(v)) or graph.degree(*_lower_key(v)) == 0:
            graph.add_edge(planted_upper[j % community_upper], v, 1.0)

    background = power_law_bipartite(
        background_upper,
        background_lower,
        background_edges,
        seed=None if seed is None else seed + 1,
        upper_prefix="bu",
        lower_prefix="bv",
    )
    for u, v, w in background.edges():
        graph.add_edge(u, v, w)

    background_upper_labels = [f"bu{i}" for i in range(background_upper)]
    background_lower_labels = [f"bv{j}" for j in range(background_lower)]
    for _ in range(bridge_edges):
        u = rng.choice(background_upper_labels)
        v = rng.choice(planted_lower)
        graph.add_edge(u, v, 1.0)
        u2 = rng.choice(planted_upper)
        v2 = rng.choice(background_lower_labels)
        graph.add_edge(u2, v2, 1.0)
    return graph, planted_upper, planted_lower


def _upper_key(label: Hashable) -> "Tuple[Side, Hashable]":
    from repro.graph.bipartite import Side

    return Side.UPPER, label


def _lower_key(label: Hashable) -> "Tuple[Side, Hashable]":
    from repro.graph.bipartite import Side

    return Side.LOWER, label


def paper_example_graph() -> BipartiteGraph:
    """The running example of Figure 2: 999 upper / 999 lower vertices.

    Edges: ``u1`` is adjacent to every lower vertex; ``v1`` is adjacent to every
    upper vertex; additionally ``u2, u3, u4`` each connect to ``v1..v4`` so that
    a small dense block exists.  Edge weights follow the figure's rule
    ``w(u, v) = 5 * u.id - v.id``.

    The graph has 2,003 edges, its (2,2)-community of ``u3`` is the block on
    ``{u1..u4} x {v1..v4}`` and the significant (2,2)-community of ``u3`` is the
    2x2 block ``{u3, u4} x {v1, v2}``.
    """
    graph = BipartiteGraph(name="paper-example")

    def weight(u_id: int, v_id: int) -> float:
        return float(5 * u_id - v_id)

    # u1 connects to every lower vertex v1..v999.
    for v_id in range(1, 1000):
        graph.add_edge("u1", f"v{v_id}", weight(1, v_id))
    # v1 connects to every upper vertex u1..u999.
    for u_id in range(1, 1000):
        graph.add_edge(f"u{u_id}", "v1", weight(u_id, 1))
    # The dense block: u2, u3, u4 each connect to v1..v4.
    for u_id in (2, 3, 4):
        for v_id in range(1, 5):
            graph.add_edge(f"u{u_id}", f"v{v_id}", weight(u_id, v_id))
    return graph


def star_heavy_graph(
    hub_degree: int,
    num_blocks: int,
    block_size: int = 3,
    seed: Optional[int] = None,
) -> BipartiteGraph:
    """A graph with two high-degree hubs plus small dense blocks.

    This is the adversarial shape for the basic indexes ``I_bs`` (Section
    III-B): the hub forces alpha_max (resp. beta_max) to be huge while the
    degeneracy stays tiny, so ``I_delta`` is far smaller.
    """
    rng = _rng(seed)
    graph = BipartiteGraph(name="star-heavy")
    for i in range(hub_degree):
        graph.add_edge("hub_u", f"leaf_v{i}", 1.0)
        graph.add_edge(f"leaf_u{i}", "hub_v", 1.0)
    for b in range(num_blocks):
        for i in range(block_size):
            for j in range(block_size):
                weight = 1.0 + rng.random()
                graph.add_edge(f"b{b}_u{i}", f"b{b}_v{j}", weight)
        # Tie each block to the hub so everything is one component.
        graph.add_edge("hub_u", f"b{b}_v0", 1.0)
        graph.add_edge(f"b{b}_u0", "hub_v", 1.0)
    return graph
