"""Reading and writing bipartite graphs as edge lists.

The KONECT collection used by the paper distributes graphs as whitespace
separated edge lists (optionally with a weight column), preceded by comment
lines starting with ``%``.  These helpers read and write that format so a user
with access to the original datasets can run the full pipeline unchanged.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterable, Iterator, Optional, TextIO, Tuple, Union

from repro.exceptions import DatasetError
from repro.graph.bipartite import BipartiteGraph

__all__ = ["read_edge_list", "write_edge_list", "read_konect", "iter_edge_lines"]

PathLike = Union[str, Path]


def _open_text(path: PathLike) -> TextIO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")  # type: ignore[return-value]
    return open(path, "r", encoding="utf-8")


def iter_edge_lines(path: PathLike) -> Iterator[Tuple[str, str, float]]:
    """Yield ``(upper, lower, weight)`` triples from a KONECT-style edge list.

    Lines starting with ``%`` or ``#`` are treated as comments.  Missing weight
    columns default to ``1.0``.
    """
    with _open_text(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("%") or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise DatasetError(
                    f"{path}:{line_number}: expected at least two columns, got {stripped!r}"
                )
            weight = 1.0
            if len(parts) >= 3:
                try:
                    weight = float(parts[2])
                except ValueError as exc:
                    raise DatasetError(
                        f"{path}:{line_number}: invalid weight column {parts[2]!r}"
                    ) from exc
            yield parts[0], parts[1], weight


def read_edge_list(path: PathLike, name: Optional[str] = None) -> BipartiteGraph:
    """Read a bipartite graph from a (possibly gzipped) edge list file."""
    graph = BipartiteGraph(name=name or Path(path).stem)
    for u, v, w in iter_edge_lines(path):
        graph.add_edge(u, v, w)
    return graph


# KONECT files use the same layout; the alias keeps call sites self-describing.
read_konect = read_edge_list


def write_edge_list(
    graph: BipartiteGraph,
    path: PathLike,
    header: Iterable[str] = (),
    precision: int = 6,
) -> None:
    """Write ``graph`` as a whitespace separated edge list with a weight column."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for line in header:
            handle.write(f"% {line}\n")
        for u, v, w in graph.edges():
            handle.write(f"{u} {v} {w:.{precision}g}\n")
