"""Frozen CSR (compressed sparse row) backend for bipartite graphs.

:class:`~repro.graph.bipartite.BipartiteGraph` stores adjacency as a
dict-of-dicts keyed by hashable labels, which is flexible and ideal for
incremental mutation but slow for whole-graph scans: every peeling pass walks
millions of dict entries and allocates a :class:`Vertex` namedtuple per touched
endpoint.  :class:`CSRBipartiteGraph` is the compact, immutable alternative:
vertex labels are interned into dense integer ids (``0..n-1`` per layer) and
each layer's adjacency is stored as the classic CSR triple

* ``indptr`` — ``int64`` array of length ``n + 1``; the neighbours of vertex
  ``i`` occupy the slice ``indptr[i]:indptr[i + 1]``;
* ``indices`` — ``int64`` array of the neighbour ids on the *other* layer;
* ``weights`` — ``float64`` array of the matching edge weights.

Both directions (upper→lower and lower→upper) are materialised so peeling can
cascade across layers without transposes.  The array-native kernels in
:mod:`repro.decomposition.csr_kernels` operate directly on these buffers.

``freeze`` / ``thaw`` bridge the two worlds: ``freeze`` snapshots a mutable
graph into a :class:`CSRBipartiteGraph` and ``thaw`` reconstructs an
equivalent :class:`BipartiteGraph` (same vertices, edges, weights and name).
The CSR form is strictly a *compute* representation — mutation always happens
on the dict graph, then the graph is re-frozen.

The module degrades gracefully when numpy is unavailable: importing it works,
``HAS_NUMPY`` is ``False``, ``resolve_backend`` never selects ``"csr"`` under
``"auto"``, and an explicit ``backend="csr"`` request raises
:class:`~repro.exceptions.InvalidParameterError`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.exceptions import GraphError, InvalidParameterError, VertexNotFoundError
from repro.graph.bipartite import BipartiteGraph, Side, Vertex

try:  # pragma: no cover - exercised implicitly by every CSR test
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - environment without numpy
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

__all__ = [
    "HAS_NUMPY",
    "AUTO_CSR_EDGE_THRESHOLD",
    "BACKENDS",
    "CSRBipartiteGraph",
    "freeze",
    "thaw",
    "resolve_backend",
]

#: Edge count above which ``backend="auto"`` switches from dict to CSR.  Below
#: this size the O(m) freeze plus numpy call overhead eats the kernel savings.
AUTO_CSR_EDGE_THRESHOLD = 5000

#: The accepted values of every ``backend=`` parameter in the library.
BACKENDS = ("dict", "csr", "auto")


def resolve_backend(backend: str, graph: BipartiteGraph) -> str:
    """Resolve a ``backend=`` argument to a concrete ``"dict"`` or ``"csr"``.

    ``"auto"`` picks CSR when numpy is importable and the graph has at least
    :data:`AUTO_CSR_EDGE_THRESHOLD` edges; explicit requests are honoured
    (``"csr"`` raises :class:`InvalidParameterError` without numpy).
    """
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "auto":
        if HAS_NUMPY and graph.num_edges >= AUTO_CSR_EDGE_THRESHOLD:
            return "csr"
        return "dict"
    if backend == "csr" and not HAS_NUMPY:
        raise InvalidParameterError(
            "backend='csr' requires numpy, which is not installed; "
            "use backend='dict' or backend='auto'"
        )
    return backend


class CSRBipartiteGraph:
    """An immutable integer-id CSR snapshot of a :class:`BipartiteGraph`.

    Labels keep their original layer-local iteration order: upper label ``i``
    of the source graph becomes upper id ``i``, and each id's neighbour slice
    preserves the source adjacency order.  This makes freezing deterministic,
    so two freezes of equal graphs produce identical arrays.
    """

    __slots__ = (
        "name",
        "upper_labels",
        "lower_labels",
        "_upper_ids",
        "_lower_ids",
        "u_indptr",
        "u_indices",
        "u_weights",
        "l_indptr",
        "l_indices",
        "l_weights",
        "_upper_handles",
        "_lower_handles",
        "_upper_handle_arr",
        "_lower_handle_arr",
        "_zero_offsets_proto",
        "_global_id_map",
    )

    def __init__(
        self,
        name: str,
        upper_labels: List[Hashable],
        lower_labels: List[Hashable],
        u_indptr: np.ndarray,
        u_indices: np.ndarray,
        u_weights: np.ndarray,
        l_indptr: np.ndarray,
        l_indices: np.ndarray,
        l_weights: np.ndarray,
    ) -> None:
        self.name = name
        self.upper_labels = upper_labels
        self.lower_labels = lower_labels
        self._upper_ids: Dict[Hashable, int] = {
            label: i for i, label in enumerate(upper_labels)
        }
        self._lower_ids: Dict[Hashable, int] = {
            label: i for i, label in enumerate(lower_labels)
        }
        self.u_indptr = u_indptr
        self.u_indices = u_indices
        self.u_weights = u_weights
        self.l_indptr = l_indptr
        self.l_indices = l_indices
        self.l_weights = l_weights
        self._upper_handles: Optional[List[Vertex]] = None
        self._lower_handles: Optional[List[Vertex]] = None
        self._upper_handle_arr = None
        self._lower_handle_arr = None
        self._zero_offsets_proto: Optional[Dict[Vertex, int]] = None
        self._global_id_map: Optional[Dict[Vertex, int]] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def freeze(cls, graph: BipartiteGraph) -> "CSRBipartiteGraph":
        """Snapshot ``graph`` into its CSR form."""
        if not HAS_NUMPY:
            raise InvalidParameterError(
                "freezing to CSR requires numpy, which is not installed"
            )
        upper_labels = list(graph.upper_labels())
        lower_labels = list(graph.lower_labels())
        upper_ids = {label: i for i, label in enumerate(upper_labels)}
        lower_ids = {label: i for i, label in enumerate(lower_labels)}

        def build_layer(
            side: Side, labels: List[Hashable], other_ids: Dict[Hashable, int]
        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
            indptr = np.zeros(len(labels) + 1, dtype=np.int64)
            index_chunks: List[int] = []
            weight_chunks: List[float] = []
            for i, label in enumerate(labels):
                nbrs = graph.neighbors(side, label)
                indptr[i + 1] = indptr[i] + len(nbrs)
                index_chunks.extend(map(other_ids.__getitem__, nbrs.keys()))
                weight_chunks.extend(nbrs.values())
            indices = np.array(index_chunks, dtype=np.int64)
            weights = np.array(weight_chunks, dtype=np.float64)
            return indptr, indices, weights

        u_indptr, u_indices, u_weights = build_layer(Side.UPPER, upper_labels, lower_ids)
        l_indptr, l_indices, l_weights = build_layer(Side.LOWER, lower_labels, upper_ids)
        return cls(
            graph.name,
            upper_labels,
            lower_labels,
            u_indptr,
            u_indices,
            u_weights,
            l_indptr,
            l_indices,
            l_weights,
        )

    def thaw(self) -> BipartiteGraph:
        """Reconstruct an equivalent mutable :class:`BipartiteGraph`."""
        graph = BipartiteGraph(name=self.name)
        for label in self.upper_labels:
            graph.add_vertex(Side.UPPER, label)
        for label in self.lower_labels:
            graph.add_vertex(Side.LOWER, label)
        indptr = self.u_indptr
        indices = self.u_indices.tolist()
        weights = self.u_weights.tolist()
        for i, upper_label in enumerate(self.upper_labels):
            for pos in range(int(indptr[i]), int(indptr[i + 1])):
                graph.add_edge(upper_label, self.lower_labels[indices[pos]], weights[pos])
        return graph

    # ------------------------------------------------------------------ #
    # sizes / degrees
    # ------------------------------------------------------------------ #
    @property
    def num_upper(self) -> int:
        return len(self.upper_labels)

    @property
    def num_lower(self) -> int:
        return len(self.lower_labels)

    @property
    def num_vertices(self) -> int:
        return self.num_upper + self.num_lower

    @property
    def num_edges(self) -> int:
        return int(self.u_indices.shape[0])

    def upper_degrees(self) -> np.ndarray:
        """Degrees of all upper vertices as an ``int64`` array."""
        return np.diff(self.u_indptr)

    def lower_degrees(self) -> np.ndarray:
        """Degrees of all lower vertices as an ``int64`` array."""
        return np.diff(self.l_indptr)

    def layer(self, side: Side) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(indptr, indices, weights)`` for one layer."""
        if side is Side.UPPER:
            return self.u_indptr, self.u_indices, self.u_weights
        return self.l_indptr, self.l_indices, self.l_weights

    # ------------------------------------------------------------------ #
    # id <-> label translation
    # ------------------------------------------------------------------ #
    def vertex_id(self, vertex: Vertex) -> int:
        """Map a :class:`Vertex` handle to its dense integer id."""
        ids = self._upper_ids if vertex.side is Side.UPPER else self._lower_ids
        try:
            return ids[vertex.label]
        except KeyError as exc:
            raise VertexNotFoundError(vertex.side, vertex.label) from exc

    def has_vertex(self, side: Side, label: Hashable) -> bool:
        ids = self._upper_ids if side is Side.UPPER else self._lower_ids
        return label in ids

    def upper_handles(self) -> List[Vertex]:
        """Vertex handles of the upper layer, indexed by id (cached)."""
        if self._upper_handles is None:
            self._upper_handles = [
                Vertex(Side.UPPER, label) for label in self.upper_labels
            ]
        return self._upper_handles

    def lower_handles(self) -> List[Vertex]:
        """Vertex handles of the lower layer, indexed by id (cached)."""
        if self._lower_handles is None:
            self._lower_handles = [
                Vertex(Side.LOWER, label) for label in self.lower_labels
            ]
        return self._lower_handles

    def handles(self, side: Side) -> List[Vertex]:
        return self.upper_handles() if side is Side.UPPER else self.lower_handles()

    def upper_handle_array(self) -> np.ndarray:
        """Upper handles as a numpy object array (cached), for fancy indexing."""
        if self._upper_handle_arr is None:
            arr = np.empty(self.num_upper, dtype=object)
            arr[:] = self.upper_handles()
            self._upper_handle_arr = arr
        return self._upper_handle_arr

    def lower_handle_array(self) -> np.ndarray:
        """Lower handles as a numpy object array (cached), for fancy indexing."""
        if self._lower_handle_arr is None:
            arr = np.empty(self.num_lower, dtype=object)
            arr[:] = self.lower_handles()
            self._lower_handle_arr = arr
        return self._lower_handle_arr

    def handle_array(self, side: Side) -> np.ndarray:
        return (
            self.upper_handle_array()
            if side is Side.UPPER
            else self.lower_handle_array()
        )

    def global_handles(self) -> List[Vertex]:
        """Vertex handles of both layers in *global* id order (upper first).

        The global id space maps upper vertex ``i`` to ``i`` and lower vertex
        ``j`` to ``num_upper + j``; it is the vertex numbering used by the
        flat per-level index arrays of the array-backed query engine.
        """
        return self.upper_handles() + self.lower_handles()

    def global_id_map(self) -> Dict[Vertex, int]:
        """A cached ``{vertex handle: global id}`` map covering every vertex.

        Built once per snapshot so index construction can hand the mapping to
        the query engine instead of re-interning every label.
        """
        if self._global_id_map is None:
            self._global_id_map = {
                handle: gid for gid, handle in enumerate(self.global_handles())
            }
        return self._global_id_map

    def zero_offsets(self) -> Dict[Vertex, int]:
        """A fresh ``{vertex: 0}`` dict covering every vertex, upper layer first.

        The all-zero prototype is hashed once and then ``dict.copy()``-ed, so
        repeated offset-table materialisation (one table per index level)
        skips re-hashing every vertex handle.
        """
        if self._zero_offsets_proto is None:
            proto: Dict[Vertex, int] = dict.fromkeys(self.upper_handles(), 0)
            proto.update(dict.fromkeys(self.lower_handles(), 0))
            self._zero_offsets_proto = proto
        return self._zero_offsets_proto.copy()

    # ------------------------------------------------------------------ #
    # validation / cosmetics
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check CSR invariants; raises :class:`GraphError` on corruption."""
        if self.u_indptr[0] != 0 or self.l_indptr[0] != 0:
            raise GraphError("indptr must start at 0")
        if np.any(np.diff(self.u_indptr) < 0) or np.any(np.diff(self.l_indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if int(self.u_indptr[-1]) != self.u_indices.shape[0]:
            raise GraphError("upper indptr/indices length mismatch")
        if int(self.l_indptr[-1]) != self.l_indices.shape[0]:
            raise GraphError("lower indptr/indices length mismatch")
        if self.u_indices.shape[0] != self.l_indices.shape[0]:
            raise GraphError("layer edge counts disagree")
        if self.u_indices.size and (
            self.u_indices.min() < 0 or self.u_indices.max() >= self.num_lower
        ):
            raise GraphError("upper neighbour id out of range")
        if self.l_indices.size and (
            self.l_indices.min() < 0 or self.l_indices.max() >= self.num_upper
        ):
            raise GraphError("lower neighbour id out of range")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"<CSRBipartiteGraph{tag} |U|={self.num_upper} |L|={self.num_lower} "
            f"|E|={self.num_edges}>"
        )


def freeze(graph: BipartiteGraph) -> CSRBipartiteGraph:
    """Module-level alias of :meth:`CSRBipartiteGraph.freeze`."""
    return CSRBipartiteGraph.freeze(graph)


def thaw(csr: CSRBipartiteGraph) -> BipartiteGraph:
    """Module-level alias of :meth:`CSRBipartiteGraph.thaw`."""
    return csr.thaw()
