"""Weighted bipartite graph substrate.

This subpackage provides the data structures and helpers that every other part
of the library builds on.  There are **two graph backends**:

* :class:`~repro.graph.bipartite.BipartiteGraph` — the mutable, label-level,
  dict-of-dicts graph used by all algorithms.  O(1) edge queries, O(deg)
  neighbourhood iteration, cheap incremental mutation.
* :class:`~repro.graph.csr.CSRBipartiteGraph` — a frozen CSR (compressed
  sparse row) snapshot with interned integer vertex ids and contiguous
  ``indptr`` / ``indices`` / ``weights`` arrays per layer.  It is the engine
  behind the vectorised peeling kernels
  (:mod:`repro.decomposition.csr_kernels`) that make core decomposition and
  index construction fast on large graphs.

``freeze(graph)`` / ``thaw(csr)`` (or the equivalent
``CSRBipartiteGraph.freeze`` / ``.thaw`` methods) convert between the two.
Algorithms never require callers to pick: every entry point that peels or
builds an index takes ``backend="dict" | "csr" | "auto"`` and ``"auto"``
freezes automatically above
:data:`~repro.graph.csr.AUTO_CSR_EDGE_THRESHOLD` edges (falling back to the
dict engine when numpy is unavailable).  Both backends are guaranteed to
produce identical results — ``tests/test_csr_agreement.py`` enforces this on
randomized inputs.

Supporting modules:

* :mod:`~repro.graph.views` — subgraph extraction and connectivity helpers.
* :mod:`~repro.graph.generators` — synthetic graph generators.
* :mod:`~repro.graph.weights` — edge-weight models (AE / UF / SK / RW).
* :mod:`~repro.graph.rwr` — random walk with restart used to derive weights
  for unweighted datasets, as in the paper.
* :mod:`~repro.graph.io` — KONECT-style edge-list readers and writers.
"""

from repro.graph.bipartite import BipartiteGraph, Side, Vertex, lower, upper
from repro.graph.csr import (
    AUTO_CSR_EDGE_THRESHOLD,
    BACKENDS,
    CSRBipartiteGraph,
    freeze,
    resolve_backend,
    thaw,
)
from repro.graph.views import (
    connected_component,
    connected_components,
    edge_subgraph,
    induced_subgraph,
)

__all__ = [
    "BipartiteGraph",
    "CSRBipartiteGraph",
    "Side",
    "Vertex",
    "upper",
    "lower",
    "freeze",
    "thaw",
    "resolve_backend",
    "AUTO_CSR_EDGE_THRESHOLD",
    "BACKENDS",
    "connected_component",
    "connected_components",
    "edge_subgraph",
    "induced_subgraph",
]
