"""Weighted bipartite graph substrate.

This subpackage provides the data structure and helpers that every other part
of the library builds on:

* :class:`~repro.graph.bipartite.BipartiteGraph` — the mutable, weighted
  bipartite graph used by all algorithms.
* :mod:`~repro.graph.views` — subgraph extraction and connectivity helpers.
* :mod:`~repro.graph.generators` — synthetic graph generators.
* :mod:`~repro.graph.weights` — edge-weight models (AE / UF / SK / RW).
* :mod:`~repro.graph.rwr` — random walk with restart used to derive weights
  for unweighted datasets, as in the paper.
* :mod:`~repro.graph.io` — KONECT-style edge-list readers and writers.
"""

from repro.graph.bipartite import BipartiteGraph, Side, Vertex, lower, upper
from repro.graph.views import (
    connected_component,
    connected_components,
    edge_subgraph,
    induced_subgraph,
)

__all__ = [
    "BipartiteGraph",
    "Side",
    "Vertex",
    "upper",
    "lower",
    "connected_component",
    "connected_components",
    "edge_subgraph",
    "induced_subgraph",
]
