"""The weighted bipartite graph data structure.

The graph stores two disjoint vertex layers, the *upper* layer ``U(G)`` and the
*lower* layer ``L(G)``, and a set of weighted edges between them.  Vertices on
each layer are identified by arbitrary hashable labels; the same label may be
used on both layers without clashing (a user id ``3`` and a movie id ``3`` are
different vertices).

Algorithms in this package refer to a vertex with a :class:`Vertex` handle, a
named tuple ``(side, label)``; :func:`upper` and :func:`lower` are convenience
constructors.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Set,
    Tuple,
)

from repro.exceptions import EdgeNotFoundError, GraphError, VertexNotFoundError

__all__ = ["Side", "Vertex", "BipartiteGraph", "upper", "lower"]


class Side(enum.Enum):
    """The two layers of a bipartite graph."""

    UPPER = "upper"
    LOWER = "lower"

    @property
    def other(self) -> "Side":
        """Return the opposite layer."""
        return Side.LOWER if self is Side.UPPER else Side.UPPER

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Side.{self.name}"


class Vertex(NamedTuple):
    """A handle identifying one vertex: its layer plus its label."""

    side: Side
    label: Hashable

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        prefix = "U" if self.side is Side.UPPER else "L"
        return f"{prefix}({self.label!r})"


def upper(label: Hashable) -> Vertex:
    """Return the handle of the upper-layer vertex with ``label``."""
    return Vertex(Side.UPPER, label)


def lower(label: Hashable) -> Vertex:
    """Return the handle of the lower-layer vertex with ``label``."""
    return Vertex(Side.LOWER, label)


EdgeTuple = Tuple[Hashable, Hashable, float]


class BipartiteGraph:
    """A mutable, undirected, weighted bipartite graph.

    Edges always connect an upper-layer vertex to a lower-layer vertex and
    carry a numeric weight (default ``1.0``).  Parallel edges are not allowed;
    re-adding an existing edge overwrites its weight.

    The adjacency structure is a dict-of-dicts per layer, which gives O(1)
    expected-time edge queries and O(deg) neighbourhood iteration — the access
    pattern every peeling / traversal algorithm in the paper relies on.
    """

    __slots__ = ("_adj", "_num_edges", "name")

    def __init__(self, name: str = "") -> None:
        self._adj: Dict[Side, Dict[Hashable, Dict[Hashable, float]]] = {
            Side.UPPER: {},
            Side.LOWER: {},
        }
        self._num_edges = 0
        self.name = name

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Hashable, Hashable] | EdgeTuple],
        name: str = "",
    ) -> "BipartiteGraph":
        """Build a graph from ``(upper, lower)`` or ``(upper, lower, weight)`` tuples.

        Raises :class:`GraphError` for malformed edge tuples (wrong arity or
        not a sequence) instead of leaking an opaque unpacking ``ValueError``.
        """
        graph = cls(name=name)
        for edge in edges:
            # A bare string would "unpack" into characters; reject it early.
            if isinstance(edge, (str, bytes)):
                raise GraphError(
                    f"edge {edge!r} is not a (upper, lower[, weight]) tuple"
                )
            try:
                arity = len(edge)
            except TypeError as exc:
                raise GraphError(
                    f"edge {edge!r} is not a (upper, lower[, weight]) tuple"
                ) from exc
            if arity == 2:
                u, v = edge  # type: ignore[misc]
                graph.add_edge(u, v)
            elif arity == 3:
                u, v, w = edge  # type: ignore[misc]
                graph.add_edge(u, v, w)
            else:
                raise GraphError(
                    f"edge tuple must have 2 or 3 elements, got {arity}: {edge!r}"
                )
        return graph

    @classmethod
    def _from_mirrored_adjacency(
        cls,
        upper_adj: Dict[Hashable, Dict[Hashable, float]],
        lower_adj: Dict[Hashable, Dict[Hashable, float]],
        num_edges: int,
        name: str = "",
    ) -> "BipartiteGraph":
        """Adopt pre-built mirrored adjacency dicts without per-edge checks.

        Internal fast path used by the array-backed query engine, which
        assembles both adjacency directions from sorted edge arrays at C
        speed.  The caller guarantees that ``upper_adj`` and ``lower_adj``
        describe the same ``num_edges`` weighted edges.
        """
        graph = cls(name=name)
        graph._adj[Side.UPPER] = upper_adj
        graph._adj[Side.LOWER] = lower_adj
        graph._num_edges = num_edges
        return graph

    def copy(self, name: Optional[str] = None) -> "BipartiteGraph":
        """Return a deep copy of the graph (labels are shared, structure is not)."""
        clone = BipartiteGraph(name=self.name if name is None else name)
        for side in (Side.UPPER, Side.LOWER):
            clone._adj[side] = {
                label: dict(nbrs) for label, nbrs in self._adj[side].items()
            }
        clone._num_edges = self._num_edges
        return clone

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add_vertex(self, side: Side, label: Hashable) -> Vertex:
        """Add an isolated vertex (no-op if it already exists)."""
        self._adj[side].setdefault(label, {})
        return Vertex(side, label)

    def add_edge(self, upper_label: Hashable, lower_label: Hashable, weight: float = 1.0) -> None:
        """Add (or re-weight) the edge between ``upper_label`` and ``lower_label``."""
        upper_nbrs = self._adj[Side.UPPER].setdefault(upper_label, {})
        lower_nbrs = self._adj[Side.LOWER].setdefault(lower_label, {})
        if lower_label not in upper_nbrs:
            self._num_edges += 1
        upper_nbrs[lower_label] = weight
        lower_nbrs[upper_label] = weight

    def remove_edge(self, upper_label: Hashable, lower_label: Hashable) -> float:
        """Remove an edge and return its weight.

        Raises :class:`EdgeNotFoundError` if the edge does not exist.  Endpoint
        vertices are kept even if they become isolated.
        """
        try:
            weight = self._adj[Side.UPPER][upper_label].pop(lower_label)
        except KeyError as exc:
            raise EdgeNotFoundError(upper_label, lower_label) from exc
        del self._adj[Side.LOWER][lower_label][upper_label]
        self._num_edges -= 1
        return weight

    def remove_vertex(self, side: Side, label: Hashable) -> None:
        """Remove a vertex and all its incident edges."""
        try:
            nbrs = self._adj[side].pop(label)
        except KeyError as exc:
            raise VertexNotFoundError(side, label) from exc
        other = side.other
        for nbr in nbrs:
            del self._adj[other][nbr][label]
        self._num_edges -= len(nbrs)

    def discard_isolated(self) -> int:
        """Drop all vertices with no incident edge; return how many were dropped."""
        dropped = 0
        for side in (Side.UPPER, Side.LOWER):
            isolated = [label for label, nbrs in self._adj[side].items() if not nbrs]
            for label in isolated:
                del self._adj[side][label]
            dropped += len(isolated)
        return dropped

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def has_vertex(self, side: Side, label: Hashable) -> bool:
        return label in self._adj[side]

    def has_edge(self, upper_label: Hashable, lower_label: Hashable) -> bool:
        nbrs = self._adj[Side.UPPER].get(upper_label)
        return nbrs is not None and lower_label in nbrs

    def weight(self, upper_label: Hashable, lower_label: Hashable) -> float:
        """Return the weight of an edge, raising if it is absent."""
        try:
            return self._adj[Side.UPPER][upper_label][lower_label]
        except KeyError as exc:
            raise EdgeNotFoundError(upper_label, lower_label) from exc

    def neighbors(self, side: Side, label: Hashable) -> Mapping[Hashable, float]:
        """Return a read-only view ``{neighbour_label: weight}`` for one vertex."""
        try:
            return self._adj[side][label]
        except KeyError as exc:
            raise VertexNotFoundError(side, label) from exc

    def neighbors_of(self, vertex: Vertex) -> Mapping[Hashable, float]:
        """Vertex-handle variant of :meth:`neighbors`."""
        return self.neighbors(vertex.side, vertex.label)

    def degree(self, side: Side, label: Hashable) -> int:
        return len(self.neighbors(side, label))

    def degree_of(self, vertex: Vertex) -> int:
        return len(self.neighbors(vertex.side, vertex.label))

    def degrees(self, side: Side) -> Dict[Hashable, int]:
        """Return the degree of every vertex on ``side``."""
        return {label: len(nbrs) for label, nbrs in self._adj[side].items()}

    def max_degree(self, side: Side) -> int:
        """Return the largest degree on ``side`` (0 for an empty layer)."""
        layer = self._adj[side]
        if not layer:
            return 0
        return max(len(nbrs) for nbrs in layer.values())

    # ------------------------------------------------------------------ #
    # iteration
    # ------------------------------------------------------------------ #
    def labels(self, side: Side) -> Iterator[Hashable]:
        return iter(self._adj[side])

    def upper_labels(self) -> Iterator[Hashable]:
        return iter(self._adj[Side.UPPER])

    def lower_labels(self) -> Iterator[Hashable]:
        return iter(self._adj[Side.LOWER])

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over every vertex handle, upper layer first."""
        for label in self._adj[Side.UPPER]:
            yield Vertex(Side.UPPER, label)
        for label in self._adj[Side.LOWER]:
            yield Vertex(Side.LOWER, label)

    def edges(self) -> Iterator[EdgeTuple]:
        """Iterate over ``(upper_label, lower_label, weight)`` triples."""
        for u, nbrs in self._adj[Side.UPPER].items():
            for v, w in nbrs.items():
                yield (u, v, w)

    def edge_weights(self) -> Iterator[float]:
        for nbrs in self._adj[Side.UPPER].values():
            yield from nbrs.values()

    # ------------------------------------------------------------------ #
    # sizes / aggregates
    # ------------------------------------------------------------------ #
    @property
    def num_upper(self) -> int:
        return len(self._adj[Side.UPPER])

    @property
    def num_lower(self) -> int:
        return len(self._adj[Side.LOWER])

    @property
    def num_vertices(self) -> int:
        return self.num_upper + self.num_lower

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def size(self) -> int:
        """The paper's ``size(G)``: the number of edges."""
        return self._num_edges

    def is_empty(self) -> bool:
        return self._num_edges == 0

    def significance(self) -> float:
        """The paper's ``f(G)``: the minimum edge weight (Definition 4).

        Raises :class:`GraphError` on an edgeless graph, for which the weight
        is undefined.
        """
        if self._num_edges == 0:
            raise GraphError("the weight f(G) of an edgeless graph is undefined")
        return min(self.edge_weights())

    def max_weight(self) -> float:
        if self._num_edges == 0:
            raise GraphError("the maximum weight of an edgeless graph is undefined")
        return max(self.edge_weights())

    def total_weight(self) -> float:
        return sum(self.edge_weights())

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def connected_component_vertices(self, start: Vertex) -> Set[Vertex]:
        """Return the vertex set of the connected component containing ``start``."""
        if not self.has_vertex(start.side, start.label):
            raise VertexNotFoundError(start.side, start.label)
        seen: Set[Vertex] = {start}
        queue: deque[Vertex] = deque([start])
        while queue:
            side, label = queue.popleft()
            other = side.other
            for nbr in self._adj[side][label]:
                handle = Vertex(other, nbr)
                if handle not in seen:
                    seen.add(handle)
                    queue.append(handle)
        return seen

    def is_connected(self) -> bool:
        """True if the graph is non-empty and forms a single connected component."""
        first: Optional[Vertex] = next(self.vertices(), None)
        if first is None:
            return False
        return len(self.connected_component_vertices(first)) == self.num_vertices

    # ------------------------------------------------------------------ #
    # validation / comparison
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check internal consistency; raises :class:`GraphError` on corruption."""
        forward = sum(len(nbrs) for nbrs in self._adj[Side.UPPER].values())
        backward = sum(len(nbrs) for nbrs in self._adj[Side.LOWER].values())
        if forward != backward or forward != self._num_edges:
            raise GraphError(
                f"edge bookkeeping mismatch: forward={forward}, "
                f"backward={backward}, counter={self._num_edges}"
            )
        for u, nbrs in self._adj[Side.UPPER].items():
            for v, w in nbrs.items():
                mirror = self._adj[Side.LOWER].get(v, {}).get(u)
                if mirror != w:
                    raise GraphError(f"asymmetric edge ({u!r}, {v!r})")

    def edge_set(self) -> Set[Tuple[Hashable, Hashable]]:
        """Return the set of ``(upper, lower)`` pairs (weights ignored)."""
        return {(u, v) for u, v, _ in self.edges()}

    def same_structure(self, other: "BipartiteGraph") -> bool:
        """True when both graphs have identical vertices, edges and weights."""
        if (
            self.num_edges != other.num_edges
            or self.num_upper != other.num_upper
            or self.num_lower != other.num_lower
        ):
            return False
        for side in (Side.UPPER, Side.LOWER):
            if self._adj[side].keys() != other._adj[side].keys():
                return False
        for u, v, w in self.edges():
            if not other.has_edge(u, v) or other.weight(u, v) != w:
                return False
        return True

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #
    def __contains__(self, vertex: object) -> bool:
        if isinstance(vertex, Vertex):
            return self.has_vertex(vertex.side, vertex.label)
        return False

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"<BipartiteGraph{tag} |U|={self.num_upper} |L|={self.num_lower} "
            f"|E|={self.num_edges}>"
        )

    def summary(self) -> Dict[str, float]:
        """Return simple descriptive statistics used by the dataset registry."""
        stats: Dict[str, float] = {
            "num_upper": self.num_upper,
            "num_lower": self.num_lower,
            "num_edges": self.num_edges,
            "max_upper_degree": self.max_degree(Side.UPPER),
            "max_lower_degree": self.max_degree(Side.LOWER),
        }
        if self.num_edges:
            weights: List[float] = list(self.edge_weights())
            stats["min_weight"] = min(weights)
            stats["max_weight"] = max(weights)
            stats["mean_weight"] = sum(weights) / len(weights)
        return stats
